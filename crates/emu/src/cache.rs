//! A set-associative data-cache model with LRU replacement.
//!
//! §IV.C.2 of the paper argues that coarse-grain column merging improves the
//! memory access pattern (Figure 7): with CCM the kernel streams each
//! selected dense row sequentially, whereas without it the same rows are
//! revisited once per column block with a large stride. This model lets the
//! profiling layer quantify that difference in cache misses without needing
//! hardware counters.

/// Configuration of a [`CacheModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Cache-line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// A typical L1 data cache: 32 KiB, 8-way, 64-byte lines.
    pub const L1D: CacheConfig = CacheConfig { capacity: 32 * 1024, ways: 8, line_bytes: 64 };

    /// A typical per-core L2 cache: 1 MiB, 16-way, 64-byte lines.
    pub const L2: CacheConfig = CacheConfig { capacity: 1024 * 1024, ways: 16, line_bytes: 64 };

    /// Number of sets implied by the configuration.
    pub fn sets(&self) -> usize {
        (self.capacity / self.line_bytes / self.ways).max(1)
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::L1D
    }
}

/// A set-associative cache with true-LRU replacement, fed with byte
/// addresses.
#[derive(Debug, Clone)]
pub struct CacheModel {
    config: CacheConfig,
    /// For each set, the resident line tags in LRU order (front = most
    /// recently used).
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl CacheModel {
    /// An empty cache with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the line size is zero or not a power of two.
    pub fn new(config: CacheConfig) -> CacheModel {
        assert!(config.line_bytes.is_power_of_two() && config.line_bytes > 0);
        assert!(config.ways > 0);
        CacheModel { config, sets: vec![Vec::new(); config.sets()], hits: 0, misses: 0 }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Access `bytes` bytes starting at `addr`, touching every cache line the
    /// range covers. Returns the number of misses incurred by this access.
    pub fn access(&mut self, addr: u64, bytes: usize) -> u64 {
        let line = self.config.line_bytes as u64;
        let first = addr / line;
        let last = (addr + bytes.max(1) as u64 - 1) / line;
        let mut misses = 0;
        for tag in first..=last {
            if self.touch_line(tag) {
                self.hits += 1;
            } else {
                self.misses += 1;
                misses += 1;
            }
        }
        misses
    }

    /// Access one cache line by tag; returns whether it hit.
    fn touch_line(&mut self, tag: u64) -> bool {
        let set_count = self.sets.len() as u64;
        let set = &mut self.sets[(tag % set_count) as usize];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            let t = set.remove(pos);
            set.insert(0, t);
            true
        } else {
            set.insert(0, tag);
            if set.len() > self.config.ways {
                set.pop();
            }
            false
        }
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio (`misses / (hits + misses)`), or zero before any access.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Forget all contents and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_set_count() {
        assert_eq!(CacheConfig::L1D.sets(), 64);
        assert_eq!(CacheConfig::L2.sets(), 1024);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheModel::new(CacheConfig::L1D);
        assert_eq!(c.access(0x1000, 4), 1);
        assert_eq!(c.access(0x1000, 4), 0);
        assert_eq!(c.access(0x1004, 4), 0); // same line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn sequential_streaming_misses_once_per_line() {
        let mut c = CacheModel::new(CacheConfig::L1D);
        // Stream 4 KiB of f32s sequentially.
        for i in 0..1024u64 {
            c.access(0x10000 + i * 4, 4);
        }
        assert_eq!(c.misses(), 4096 / 64);
        assert_eq!(c.hits(), 1024 - 64);
    }

    #[test]
    fn strided_access_thrashes_small_cache() {
        // A tiny direct-mapped-ish cache to force conflict misses.
        let config = CacheConfig { capacity: 1024, ways: 2, line_bytes: 64 };
        let mut seq = CacheModel::new(config);
        let mut strided = CacheModel::new(config);
        // Working set of 16 KiB, touched twice.
        for _round in 0..2 {
            for i in 0..4096u64 {
                seq.access(i * 4, 4);
            }
        }
        for _round in 0..2 {
            for col in 0..4u64 {
                for row in 0..1024u64 {
                    strided.access(row * 16 + col * 4, 4);
                }
            }
        }
        // Both touch the same bytes, but the strided order revisits lines
        // after they were evicted.
        assert!(strided.misses() >= seq.misses());
    }

    #[test]
    fn wide_access_touches_multiple_lines() {
        let mut c = CacheModel::new(CacheConfig::L1D);
        // A 64-byte load aligned halfway across two lines.
        assert_eq!(c.access(0x20, 64), 2);
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = CacheModel::new(CacheConfig::L1D);
        c.access(0, 64);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert_eq!(c.access(0, 4), 1); // cold again
        assert!(c.miss_ratio() > 0.99);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One set only: capacity 128 B, 2 ways, 64 B lines.
        let config = CacheConfig { capacity: 128, ways: 2, line_bytes: 64 };
        let mut c = CacheModel::new(config);
        assert_eq!(config.sets(), 1);
        c.access(0, 4); // line A (miss)
        c.access(64, 4); // line B (miss)
        c.access(0, 4); // A hit, A is MRU
        c.access(128, 4); // line C: evicts B
        assert_eq!(c.access(0, 4), 0); // A still resident
        assert_eq!(c.access(64, 4), 1); // B was evicted
    }
}
