//! Architectural event counters and the branch-misprediction model.

/// Hardware-event counts accumulated while emulating a kernel.
///
/// These mirror the four `perf` metrics the paper reports (memory loads,
/// branches, branch misses, instructions) plus stores for completeness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HwCounters {
    /// Retired instructions.
    pub instructions: u64,
    /// Memory read operations (one per memory operand read, regardless of
    /// width — matching how load uops are counted).
    pub memory_loads: u64,
    /// Memory write operations.
    pub memory_stores: u64,
    /// Executed branch instructions (conditional, unconditional, calls and
    /// returns).
    pub branches: u64,
    /// Conditional branches whose direction the bimodal predictor got wrong.
    pub branch_misses: u64,
}

impl HwCounters {
    /// Add another set of counters (e.g. from a second kernel invocation).
    pub fn accumulate(&mut self, other: &HwCounters) {
        self.instructions += other.instructions;
        self.memory_loads += other.memory_loads;
        self.memory_stores += other.memory_stores;
        self.branches += other.branches;
        self.branch_misses += other.branch_misses;
    }
}

impl std::fmt::Display for HwCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "instructions={} loads={} stores={} branches={} branch-misses={}",
            self.instructions,
            self.memory_loads,
            self.memory_stores,
            self.branches,
            self.branch_misses
        )
    }
}

/// Number of two-bit counters in the pattern-history table.
const PHT_ENTRIES: usize = 4096;

/// A bimodal (two-bit saturating counter) branch predictor.
///
/// This is the classic baseline predictor; real cores do much better on
/// regular loops, which is why the paper observes that branch *misses* shrink
/// less than branch *counts*. A bimodal table reproduces that behaviour:
/// tight loops predict almost perfectly (one miss per exit), so removing
/// branches mostly removes correctly predicted ones.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    table: Vec<u8>,
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::new()
    }
}

impl BranchPredictor {
    /// A predictor with all counters initialized to "weakly taken".
    pub fn new() -> BranchPredictor {
        BranchPredictor { table: vec![2u8; PHT_ENTRIES] }
    }

    /// Record the outcome of the conditional branch at `pc`; returns whether
    /// the prediction was correct.
    pub fn predict_and_update(&mut self, pc: usize, taken: bool) -> bool {
        let idx = pc & (PHT_ENTRIES - 1);
        let counter = &mut self.table[idx];
        let predicted_taken = *counter >= 2;
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        predicted_taken == taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_fields() {
        let mut a = HwCounters {
            instructions: 1,
            memory_loads: 2,
            memory_stores: 3,
            branches: 4,
            branch_misses: 5,
        };
        let b = HwCounters {
            instructions: 10,
            memory_loads: 20,
            memory_stores: 30,
            branches: 40,
            branch_misses: 50,
        };
        a.accumulate(&b);
        assert_eq!(a.instructions, 11);
        assert_eq!(a.branch_misses, 55);
        assert!(!a.to_string().is_empty());
    }

    #[test]
    fn predictor_learns_a_loop() {
        let mut p = BranchPredictor::new();
        let mut misses = 0;
        // A loop branch taken 99 times then not taken once, repeated.
        for _ in 0..10 {
            for _ in 0..99 {
                if !p.predict_and_update(0x40, true) {
                    misses += 1;
                }
            }
            if !p.predict_and_update(0x40, false) {
                misses += 1;
            }
        }
        // Steady state: roughly one miss per exit plus warm-up.
        assert!(misses <= 12, "misses = {misses}");
    }

    #[test]
    fn predictor_struggles_with_alternation() {
        let mut p = BranchPredictor::new();
        let mut misses = 0;
        for i in 0..100 {
            if !p.predict_and_update(0x80, i % 2 == 0) {
                misses += 1;
            }
        }
        assert!(misses > 30, "alternating branches should defeat a bimodal predictor");
    }
}
