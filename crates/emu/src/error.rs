//! Error type for the emulator.

use std::fmt;

/// Errors produced while decoding or executing machine code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The decoder met an instruction outside the supported subset.
    Unsupported {
        /// Byte offset of the instruction within the code buffer.
        offset: usize,
        /// A short description of what was found.
        what: String,
    },
    /// The instruction stream ended in the middle of an instruction.
    Truncated {
        /// Byte offset where decoding started.
        offset: usize,
    },
    /// Control flow left the code buffer.
    RipOutOfRange {
        /// The offending instruction-pointer value.
        rip: usize,
    },
    /// The emulated stack overflowed or underflowed.
    StackFault,
    /// The configured instruction ceiling was exceeded.
    InstructionLimit {
        /// The ceiling that was hit.
        limit: u64,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Unsupported { offset, what } => {
                write!(f, "unsupported instruction at offset {offset:#x}: {what}")
            }
            EmuError::Truncated { offset } => {
                write!(f, "truncated instruction at offset {offset:#x}")
            }
            EmuError::RipOutOfRange { rip } => {
                write!(f, "instruction pointer {rip:#x} left the code buffer")
            }
            EmuError::StackFault => write!(f, "emulated stack overflow or underflow"),
            EmuError::InstructionLimit { limit } => {
                write!(f, "exceeded the emulation limit of {limit} instructions")
            }
        }
    }
}

impl std::error::Error for EmuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            EmuError::Unsupported { offset: 4, what: "rdtsc".into() },
            EmuError::Truncated { offset: 0 },
            EmuError::RipOutOfRange { rip: 100 },
            EmuError::StackFault,
            EmuError::InstructionLimit { limit: 5 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
