//! Instruction decoder for the supported x86-64 subset.

use crate::error::EmuError;
use crate::inst::{AluOp, Inst, MemOperand, OpWidth, RmOperand, VecKind};

/// A byte cursor over the code buffer.
struct Cursor<'a> {
    code: &'a [u8],
    start: usize,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(code: &'a [u8], start: usize) -> Cursor<'a> {
        Cursor { code, start, pos: start }
    }

    fn u8(&mut self) -> Result<u8, EmuError> {
        let b = *self.code.get(self.pos).ok_or(EmuError::Truncated { offset: self.start })?;
        self.pos += 1;
        Ok(b)
    }

    fn peek(&self) -> Option<u8> {
        self.code.get(self.pos).copied()
    }

    fn i8(&mut self) -> Result<i8, EmuError> {
        Ok(self.u8()? as i8)
    }

    fn u32(&mut self) -> Result<u32, EmuError> {
        let mut v = [0u8; 4];
        for b in &mut v {
            *b = self.u8()?;
        }
        Ok(u32::from_le_bytes(v))
    }

    fn i32(&mut self) -> Result<i32, EmuError> {
        Ok(self.u32()? as i32)
    }

    fn u64(&mut self) -> Result<u64, EmuError> {
        let mut v = [0u8; 8];
        for b in &mut v {
            *b = self.u8()?;
        }
        Ok(u64::from_le_bytes(v))
    }

    fn len(&self) -> usize {
        self.pos - self.start
    }

    fn unsupported(&self, what: impl Into<String>) -> EmuError {
        EmuError::Unsupported { offset: self.start, what: what.into() }
    }
}

/// Decoded legacy prefixes.
#[derive(Default)]
struct Prefixes {
    lock: bool,
    rep_f3: bool,
    opsize_66: bool,
    rep_f2: bool,
    rex: u8,
}

impl Prefixes {
    fn rex_w(&self) -> bool {
        self.rex & 0x08 != 0
    }
    fn rex_r(&self) -> u8 {
        (self.rex >> 2) & 1
    }
    fn rex_x(&self) -> u8 {
        (self.rex >> 1) & 1
    }
    fn rex_b(&self) -> u8 {
        self.rex & 1
    }
}

/// Decode the ModRM byte (and SIB/displacement) that follows.
///
/// `reg_ext`, `rm_ext` and `index_ext` are the prefix-provided extension
/// bits (already shifted to bit 3; `rm_ext_hi` is bit 4 for EVEX register
/// operands). `force_disp32_on_mod1` rejects EVEX compressed disp8 forms.
fn decode_modrm(
    cur: &mut Cursor<'_>,
    reg_ext: u8,
    rm_ext: u8,
    index_ext: u8,
    rm_ext_hi: u8,
) -> Result<(u8, RmOperand), EmuError> {
    let modrm = cur.u8()?;
    let md = modrm >> 6;
    let reg = (reg_ext << 3) | ((modrm >> 3) & 0b111);
    let rm_low = modrm & 0b111;
    if md == 0b11 {
        let rm = (rm_ext_hi << 4) | (rm_ext << 3) | rm_low;
        return Ok((reg, RmOperand::Reg(rm)));
    }
    // Memory operand.
    let (base, index) = if rm_low == 0b100 {
        // SIB byte.
        let sib = cur.u8()?;
        let scale = sib >> 6;
        let idx_low = (sib >> 3) & 0b111;
        let base_low = sib & 0b111;
        let index = if idx_low == 0b100 && index_ext == 0 {
            None
        } else {
            Some(((index_ext << 3) | idx_low, scale))
        };
        if base_low == 0b101 && md == 0b00 {
            return Err(cur.unsupported("SIB with no base register"));
        }
        ((rm_ext << 3) | base_low, index)
    } else {
        if rm_low == 0b101 && md == 0b00 {
            return Err(cur.unsupported("RIP-relative addressing"));
        }
        ((rm_ext << 3) | rm_low, None)
    };
    let disp = match md {
        0b00 => 0,
        0b01 => cur.i8()? as i32,
        0b10 => cur.i32()?,
        _ => unreachable!(),
    };
    Ok((reg, RmOperand::Mem(MemOperand { base, index, disp })))
}

/// Decode one instruction starting at `offset`; returns the instruction and
/// its encoded length.
pub fn decode(code: &[u8], offset: usize) -> Result<(Inst, usize), EmuError> {
    let mut cur = Cursor::new(code, offset);
    let mut prefixes = Prefixes::default();

    // Legacy prefixes.
    loop {
        match cur.peek() {
            Some(0xF0) => {
                prefixes.lock = true;
                cur.u8()?;
            }
            Some(0xF3) => {
                prefixes.rep_f3 = true;
                cur.u8()?;
            }
            Some(0xF2) => {
                prefixes.rep_f2 = true;
                cur.u8()?;
            }
            Some(0x66) => {
                prefixes.opsize_66 = true;
                cur.u8()?;
            }
            _ => break,
        }
    }

    // VEX / EVEX prefixes.
    match cur.peek() {
        Some(0xC4) | Some(0xC5) => return decode_vex(code, offset, cur),
        Some(0x62) => return decode_evex(code, offset, cur),
        _ => {}
    }

    // REX prefix.
    if let Some(b) = cur.peek() {
        if (0x40..=0x4F).contains(&b) {
            prefixes.rex = b;
            cur.u8()?;
        }
    }

    let width = if prefixes.rex_w() { OpWidth::W64 } else { OpWidth::W32 };
    let opcode = cur.u8()?;
    let inst = match opcode {
        0x90 => Inst::Nop,
        0xC3 => Inst::Ret,
        0xE9 => {
            let disp = cur.i32()? as i64;
            Inst::Jmp { target: (cur.pos as i64 + disp) as u64 }
        }
        0x50..=0x57 => Inst::Push { reg: (prefixes.rex_b() << 3) | (opcode - 0x50) },
        0x58..=0x5F => Inst::Pop { reg: (prefixes.rex_b() << 3) | (opcode - 0x58) },
        0xB8..=0xBF => {
            let dst = (prefixes.rex_b() << 3) | (opcode - 0xB8);
            let imm = if prefixes.rex_w() { cur.u64()? } else { cur.u32()? as u64 };
            Inst::MovRegImm { dst, imm }
        }
        0x89 => {
            let (reg, rm) =
                decode_modrm(&mut cur, prefixes.rex_r(), prefixes.rex_b(), prefixes.rex_x(), 0)?;
            Inst::MovRmReg { dst: rm, src: reg, width }
        }
        0x8B => {
            let (reg, rm) =
                decode_modrm(&mut cur, prefixes.rex_r(), prefixes.rex_b(), prefixes.rex_x(), 0)?;
            Inst::MovRegRm { dst: reg, src: rm, width }
        }
        0x8D => {
            let (reg, rm) =
                decode_modrm(&mut cur, prefixes.rex_r(), prefixes.rex_b(), prefixes.rex_x(), 0)?;
            match rm {
                RmOperand::Mem(mem) => Inst::Lea { dst: reg, mem },
                RmOperand::Reg(_) => return Err(cur.unsupported("lea with register operand")),
            }
        }
        0x01 | 0x29 | 0x39 | 0x31 | 0x85 => {
            let op = match opcode {
                0x01 => AluOp::Add,
                0x29 => AluOp::Sub,
                0x39 => AluOp::Cmp,
                0x31 => AluOp::Xor,
                _ => AluOp::Test,
            };
            let (reg, rm) =
                decode_modrm(&mut cur, prefixes.rex_r(), prefixes.rex_b(), prefixes.rex_x(), 0)?;
            Inst::AluRmReg { op, dst: rm, src: reg }
        }
        0x03 | 0x2B | 0x3B | 0x33 => {
            let op = match opcode {
                0x03 => AluOp::Add,
                0x2B => AluOp::Sub,
                0x3B => AluOp::Cmp,
                _ => AluOp::Xor,
            };
            let (reg, rm) =
                decode_modrm(&mut cur, prefixes.rex_r(), prefixes.rex_b(), prefixes.rex_x(), 0)?;
            Inst::AluRegRm { op, dst: reg, src: rm }
        }
        0x81 | 0x83 => {
            let (digit, rm) = decode_modrm(&mut cur, 0, prefixes.rex_b(), prefixes.rex_x(), 0)?;
            let imm = if opcode == 0x83 { cur.i8()? as i64 } else { cur.i32()? as i64 };
            let op = match digit & 0b111 {
                0 => AluOp::Add,
                5 => AluOp::Sub,
                7 => AluOp::Cmp,
                6 => AluOp::Xor,
                other => return Err(cur.unsupported(format!("group-1 /{other}"))),
            };
            Inst::AluRmImm { op, dst: rm, imm }
        }
        0x69 => {
            let (reg, rm) =
                decode_modrm(&mut cur, prefixes.rex_r(), prefixes.rex_b(), prefixes.rex_x(), 0)?;
            let imm = cur.i32()? as i64;
            Inst::ImulRegRmImm { dst: reg, src: rm, imm }
        }
        0xC1 => {
            let (digit, rm) = decode_modrm(&mut cur, 0, prefixes.rex_b(), prefixes.rex_x(), 0)?;
            let amount = cur.u8()?;
            match digit & 0b111 {
                4 => Inst::ShiftImm { dst: rm, left: true, amount },
                5 => Inst::ShiftImm { dst: rm, left: false, amount },
                other => return Err(cur.unsupported(format!("shift group /{other}"))),
            }
        }
        0xFF => {
            let (digit, rm) = decode_modrm(&mut cur, 0, prefixes.rex_b(), prefixes.rex_x(), 0)?;
            match digit & 0b111 {
                0 => Inst::IncDec { dst: rm, dec: false },
                1 => Inst::IncDec { dst: rm, dec: true },
                other => return Err(cur.unsupported(format!("group-5 /{other}"))),
            }
        }
        0x0F => {
            let op2 = cur.u8()?;
            match op2 {
                0x80..=0x8F => {
                    let disp = cur.i32()? as i64;
                    Inst::Jcc { cond: op2 - 0x80, target: (cur.pos as i64 + disp) as u64 }
                }
                0xAF => {
                    let (reg, rm) = decode_modrm(
                        &mut cur,
                        prefixes.rex_r(),
                        prefixes.rex_b(),
                        prefixes.rex_x(),
                        0,
                    )?;
                    Inst::ImulRegRm { dst: reg, src: rm }
                }
                0xC1 => {
                    let (reg, rm) = decode_modrm(
                        &mut cur,
                        prefixes.rex_r(),
                        prefixes.rex_b(),
                        prefixes.rex_x(),
                        0,
                    )?;
                    match rm {
                        RmOperand::Mem(mem) => Inst::Xadd { mem, reg },
                        RmOperand::Reg(_) => {
                            return Err(cur.unsupported("xadd with register destination"))
                        }
                    }
                }
                other => return Err(cur.unsupported(format!("two-byte opcode 0F {other:02X}"))),
            }
        }
        other => return Err(cur.unsupported(format!("opcode {other:02X}"))),
    };
    Ok((inst, cur.len()))
}

/// Shared VEX/EVEX opcode dispatch once the prefix fields are known.
#[allow(clippy::too_many_arguments)]
fn decode_avx_opcode(
    cur: &mut Cursor<'_>,
    map: u8,
    pp: u8,
    w: bool,
    width_bytes: usize,
    reg_ext: u8,
    reg_ext_hi: u8,
    rm_ext: u8,
    index_ext: u8,
    rm_ext_hi: u8,
    vvvv: u8,
) -> Result<Inst, EmuError> {
    let opcode = cur.u8()?;
    // vzeroupper has no ModRM byte.
    if map == 1 && opcode == 0x77 {
        return Ok(Inst::VZeroUpper);
    }
    let (reg_low, rm) = decode_modrm(cur, reg_ext, rm_ext, index_ext, rm_ext_hi)?;
    let reg = (reg_ext_hi << 4) | reg_low;
    let kind_ps = |pp: u8| if pp == 1 { VecKind::F64 } else { VecKind::F32 };
    match (map, opcode) {
        (1, 0x57) => Ok(Inst::VXor { dst: reg, a: vvvv, b: rm_reg(cur, rm)?, width_bytes }),
        (1, 0xEF) => Ok(Inst::VXor { dst: reg, a: vvvv, b: rm_reg(cur, rm)?, width_bytes }),
        (1, 0x10) | (1, 0x11) => {
            // Moves: pp selects ps/pd/ss/sd.
            let bytes = match pp {
                0 => width_bytes,
                1 => width_bytes,
                2 => 4,
                3 => 8,
                _ => unreachable!(),
            };
            let mem = rm_mem(cur, rm)?;
            if opcode == 0x10 {
                Ok(Inst::VMovLoad { dst: reg, src: mem, width_bytes: bytes })
            } else {
                Ok(Inst::VMovStore { dst: mem, src: reg, width_bytes: bytes })
            }
        }
        (1, 0x58) | (1, 0x59) => {
            let (kind, bytes, scalar) = match pp {
                0 => (VecKind::F32, width_bytes, false),
                1 => (VecKind::F64, width_bytes, false),
                2 => (VecKind::F32, 4, true),
                3 => (VecKind::F64, 8, true),
                _ => unreachable!(),
            };
            if opcode == 0x58 {
                Ok(Inst::VAdd { dst: reg, a: vvvv, src: rm, kind, width_bytes: bytes, scalar })
            } else {
                Ok(Inst::VMul { dst: reg, a: vvvv, src: rm, kind, width_bytes: bytes, scalar })
            }
        }
        (2, 0x18) => Ok(Inst::VBroadcast {
            dst: reg,
            src: rm_mem(cur, rm)?,
            kind: VecKind::F32,
            width_bytes,
        }),
        (2, 0x19) => Ok(Inst::VBroadcast {
            dst: reg,
            src: rm_mem(cur, rm)?,
            kind: VecKind::F64,
            width_bytes,
        }),
        (2, 0xB8) => Ok(Inst::VFmadd231 {
            dst: reg,
            a: vvvv,
            src: rm,
            kind: if w { VecKind::F64 } else { VecKind::F32 },
            width_bytes,
            scalar: false,
        }),
        (2, 0xB9) => Ok(Inst::VFmadd231 {
            dst: reg,
            a: vvvv,
            src: rm,
            kind: if w { VecKind::F64 } else { VecKind::F32 },
            width_bytes: if w { 8 } else { 4 },
            scalar: true,
        }),
        (m, o) => {
            let _ = kind_ps;
            Err(cur.unsupported(format!("AVX opcode map {m} op {o:02X}")))
        }
    }
}

fn rm_reg(cur: &Cursor<'_>, rm: RmOperand) -> Result<u8, EmuError> {
    match rm {
        RmOperand::Reg(r) => Ok(r),
        RmOperand::Mem(_) => Err(cur.unsupported("expected a register operand")),
    }
}

fn rm_mem(cur: &Cursor<'_>, rm: RmOperand) -> Result<MemOperand, EmuError> {
    match rm {
        RmOperand::Mem(m) => Ok(m),
        RmOperand::Reg(_) => Err(cur.unsupported("expected a memory operand")),
    }
}

fn decode_vex(
    _code: &[u8],
    _offset: usize,
    mut cur: Cursor<'_>,
) -> Result<(Inst, usize), EmuError> {
    let first = cur.u8()?;
    let (map, pp, w, vl, reg_ext, rm_ext, index_ext, vvvv) = if first == 0xC4 {
        let b1 = cur.u8()?;
        let b2 = cur.u8()?;
        let map = b1 & 0b11111;
        let reg_ext = ((!b1) >> 7) & 1;
        let index_ext = ((!b1) >> 6) & 1;
        let rm_ext = ((!b1) >> 5) & 1;
        let w = b2 & 0x80 != 0;
        let vvvv = ((!b2) >> 3) & 0xF;
        let vl = (b2 >> 2) & 1;
        let pp = b2 & 0b11;
        (map, pp, w, vl, reg_ext, rm_ext, index_ext, vvvv)
    } else {
        // C5: two-byte VEX.
        let b1 = cur.u8()?;
        let reg_ext = ((!b1) >> 7) & 1;
        let vvvv = ((!b1) >> 3) & 0xF;
        let vl = (b1 >> 2) & 1;
        let pp = b1 & 0b11;
        (1u8, pp, false, vl, reg_ext, 0u8, 0u8, vvvv)
    };
    let width_bytes = if vl == 1 { 32 } else { 16 };
    let inst = decode_avx_opcode(
        &mut cur,
        map,
        pp,
        w,
        width_bytes,
        reg_ext,
        0,
        rm_ext,
        index_ext,
        0,
        vvvv,
    )?;
    Ok((inst, cur.len()))
}

fn decode_evex(
    _code: &[u8],
    _offset: usize,
    mut cur: Cursor<'_>,
) -> Result<(Inst, usize), EmuError> {
    let first = cur.u8()?;
    debug_assert_eq!(first, 0x62);
    let p0 = cur.u8()?;
    let p1 = cur.u8()?;
    let p2 = cur.u8()?;
    let map = p0 & 0b111;
    let reg_ext = ((!p0) >> 7) & 1;
    let index_ext = ((!p0) >> 6) & 1;
    let rm_ext = ((!p0) >> 5) & 1;
    let reg_ext_hi = ((!p0) >> 4) & 1;
    let w = p1 & 0x80 != 0;
    let vvvv_lo = ((!p1) >> 3) & 0xF;
    let pp = p1 & 0b11;
    let vl = (p2 >> 5) & 0b11;
    let vvvv_hi = ((!p2) >> 3) & 1;
    let vvvv = (vvvv_hi << 4) | vvvv_lo;
    if p2 & 0b111 != 0 {
        return Err(cur.unsupported("EVEX masking"));
    }
    if p2 & 0b1_0000 != 0 {
        return Err(cur.unsupported("EVEX broadcast/rounding"));
    }
    let width_bytes = match vl {
        0 => 16,
        1 => 32,
        2 => 64,
        _ => return Err(cur.unsupported("EVEX vector length 3")),
    };
    // For register rm operands EVEX.X carries bit 4; decode_modrm receives it
    // as `rm_ext_hi`. For memory operands the same bit extends the index
    // register, which decode_modrm also handles via `index_ext`.
    let inst = decode_avx_opcode(
        &mut cur,
        map,
        pp,
        w,
        width_bytes,
        reg_ext,
        reg_ext_hi,
        rm_ext,
        index_ext,
        index_ext,
        vvvv,
    )?;
    Ok((inst, cur.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitspmm_asm::{Assembler, Gpr, Mem, Scale, VecReg, Xmm};

    fn decode_first(asm: Assembler) -> (Inst, usize) {
        let code = asm.finalize().unwrap();
        decode(&code, 0).unwrap()
    }

    #[test]
    fn decodes_mov_imm64() {
        let mut asm = Assembler::new();
        asm.mov_ri64(Gpr::R12, 0x1122334455667788);
        let (inst, len) = decode_first(asm);
        assert_eq!(inst, Inst::MovRegImm { dst: 12, imm: 0x1122334455667788 });
        assert_eq!(len, 10);
    }

    #[test]
    fn decodes_indexed_load() {
        let mut asm = Assembler::new();
        asm.mov_rm64(Gpr::R10, Mem::base(Gpr::Rbx).index(Gpr::Rdi, Scale::S8).disp(8));
        let (inst, _) = decode_first(asm);
        assert_eq!(
            inst,
            Inst::MovRegRm {
                dst: 10,
                src: RmOperand::Mem(MemOperand {
                    base: Gpr::Rbx.id(),
                    index: Some((Gpr::Rdi.id(), 3)),
                    disp: 8
                }),
                width: OpWidth::W64,
            }
        );
    }

    #[test]
    fn decodes_32bit_load_as_w32() {
        let mut asm = Assembler::new();
        asm.mov_rm32(Gpr::R12, Mem::base(Gpr::Rcx).index(Gpr::R10, Scale::S4));
        let (inst, _) = decode_first(asm);
        match inst {
            Inst::MovRegRm { dst: 12, width: OpWidth::W32, .. } => {}
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn decodes_alu_and_jumps() {
        let mut asm = Assembler::new();
        let l = asm.new_label();
        asm.cmp_rr64(Gpr::R10, Gpr::R11);
        asm.jcc(jitspmm_asm::Cond::Ge, l);
        asm.add_ri64(Gpr::Rax, 100000);
        asm.bind(l).unwrap();
        asm.ret();
        let code = asm.finalize().unwrap();
        let (i1, l1) = decode(&code, 0).unwrap();
        assert_eq!(i1, Inst::AluRmReg { op: AluOp::Cmp, dst: RmOperand::Reg(10), src: 11 });
        let (i2, l2) = decode(&code, l1).unwrap();
        match i2 {
            Inst::Jcc { cond: 0xD, target } => {
                // Target must be the offset of ret.
                assert_eq!(target as usize, code.len() - 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        let (i3, _) = decode(&code, l1 + l2).unwrap();
        assert_eq!(i3, Inst::AluRmImm { op: AluOp::Add, dst: RmOperand::Reg(0), imm: 100000 });
    }

    #[test]
    fn decodes_lock_xadd() {
        let mut asm = Assembler::new();
        asm.lock_xadd_mr64(Mem::base(Gpr::R14), Gpr::Rsi);
        let (inst, _) = decode_first(asm);
        assert_eq!(
            inst,
            Inst::Xadd { mem: MemOperand { base: 14, index: None, disp: 0 }, reg: Gpr::Rsi.id() }
        );
    }

    #[test]
    fn decodes_vex_and_evex_fmadd() {
        // VEX form (ymm, low registers).
        let mut asm = Assembler::new();
        asm.vfmadd231ps_m(VecReg::ymm(2), VecReg::ymm(7), Mem::base(Gpr::R8).disp(32));
        let (inst, _) = decode_first(asm);
        assert_eq!(
            inst,
            Inst::VFmadd231 {
                dst: 2,
                a: 7,
                src: RmOperand::Mem(MemOperand { base: 8, index: None, disp: 32 }),
                kind: VecKind::F32,
                width_bytes: 32,
                scalar: false,
            }
        );
        // EVEX form (zmm31 source).
        let mut asm = Assembler::new();
        asm.vfmadd231ps_m(
            VecReg::zmm(0),
            VecReg::zmm(31),
            Mem::base(Gpr::R8).index(Gpr::R12, Scale::S1),
        );
        let (inst, _) = decode_first(asm);
        assert_eq!(
            inst,
            Inst::VFmadd231 {
                dst: 0,
                a: 31,
                src: RmOperand::Mem(MemOperand { base: 8, index: Some((12, 0)), disp: 0 }),
                kind: VecKind::F32,
                width_bytes: 64,
                scalar: false,
            }
        );
    }

    #[test]
    fn decodes_broadcast_and_moves() {
        let mut asm = Assembler::new();
        asm.vbroadcastss(VecReg::zmm(31), Mem::base(Gpr::Rdx).index(Gpr::R10, Scale::S4));
        asm.vmovups_store(Mem::base(Gpr::R9).disp(64), VecReg::zmm(1));
        asm.vmovss_load(Xmm::new(4), Mem::base(Gpr::Rdx));
        let code = asm.finalize().unwrap();
        let (i1, l1) = decode(&code, 0).unwrap();
        assert_eq!(
            i1,
            Inst::VBroadcast {
                dst: 31,
                src: MemOperand { base: 2, index: Some((10, 2)), disp: 0 },
                kind: VecKind::F32,
                width_bytes: 64,
            }
        );
        let (i2, l2) = decode(&code, l1).unwrap();
        assert_eq!(
            i2,
            Inst::VMovStore {
                dst: MemOperand { base: 9, index: None, disp: 64 },
                src: 1,
                width_bytes: 64,
            }
        );
        let (i3, _) = decode(&code, l1 + l2).unwrap();
        assert_eq!(
            i3,
            Inst::VMovLoad {
                dst: 4,
                src: MemOperand { base: 2, index: None, disp: 0 },
                width_bytes: 4
            }
        );
    }

    #[test]
    fn decodes_vxor_and_vzeroupper() {
        let mut asm = Assembler::new();
        asm.vxorps(VecReg::zmm(3), VecReg::zmm(3), VecReg::zmm(3));
        asm.vxorps(VecReg::xmm(2), VecReg::xmm(2), VecReg::xmm(2));
        asm.vzeroupper();
        let code = asm.finalize().unwrap();
        let (i1, l1) = decode(&code, 0).unwrap();
        assert_eq!(i1, Inst::VXor { dst: 3, a: 3, b: 3, width_bytes: 64 });
        let (i2, l2) = decode(&code, l1).unwrap();
        assert_eq!(i2, Inst::VXor { dst: 2, a: 2, b: 2, width_bytes: 16 });
        let (i3, _) = decode(&code, l1 + l2).unwrap();
        assert_eq!(i3, Inst::VZeroUpper);
    }

    #[test]
    fn decodes_push_pop_lea_shift_imul() {
        let mut asm = Assembler::new();
        asm.push_r64(Gpr::R13);
        asm.pop_r64(Gpr::Rbx);
        asm.lea(Gpr::Rax, Mem::base(Gpr::Rbp).index(Gpr::R9, Scale::S2).disp(-4));
        asm.shl_ri64(Gpr::Rdx, 3);
        asm.imul_rri64(Gpr::R13, Gpr::Rdi, 180);
        asm.imul_rr64(Gpr::Rax, Gpr::Rbx);
        let code = asm.finalize().unwrap();
        let mut off = 0;
        let mut insts = Vec::new();
        while off < code.len() {
            let (i, l) = decode(&code, off).unwrap();
            insts.push(i);
            off += l;
        }
        assert_eq!(insts[0], Inst::Push { reg: 13 });
        assert_eq!(insts[1], Inst::Pop { reg: 3 });
        assert!(matches!(insts[2], Inst::Lea { dst: 0, .. }));
        assert_eq!(insts[3], Inst::ShiftImm { dst: RmOperand::Reg(2), left: true, amount: 3 });
        assert_eq!(insts[4], Inst::ImulRegRmImm { dst: 13, src: RmOperand::Reg(7), imm: 180 });
        assert_eq!(insts[5], Inst::ImulRegRm { dst: 0, src: RmOperand::Reg(3) });
    }

    #[test]
    fn truncated_input_is_detected() {
        assert!(matches!(decode(&[0x48], 0), Err(EmuError::Truncated { .. })));
        assert!(matches!(decode(&[0x62, 0xF2], 0), Err(EmuError::Truncated { .. })));
    }

    #[test]
    fn unknown_opcode_is_unsupported() {
        assert!(matches!(decode(&[0xCC], 0), Err(EmuError::Unsupported { .. })));
    }
}
