//! # jitspmm-emu — an x86-64 subset emulator with hardware-event counters
//!
//! The JITSPMM paper profiles its kernels with Linux `perf` hardware
//! counters (memory loads, branches, branch misses, instructions — Table II
//! and Figure 11). Hardware counters are not reliably available in a
//! container, so this crate provides the substitute substrate: it decodes
//! and executes the exact machine code produced by `jitspmm-asm`, counting
//! architectural events as it goes and modelling branch mispredictions with
//! a bimodal two-bit predictor.
//!
//! Besides profiling, the emulator doubles as an independent oracle for the
//! encoder: an instruction that the assembler mis-encodes either fails to
//! decode or produces results that disagree with native execution, both of
//! which the test suites check.
//!
//! The supported instruction subset is exactly what the JITSPMM code
//! generator emits (ALU/control-flow, `lock xadd`, and the VEX/EVEX
//! `vxorps`/`vpxord`/`vbroadcastss(d)`/`vfmadd231*`/`vmovups`/`vmovss`
//! family), plus a little breadth for tests.
//!
//! # Example
//!
//! ```
//! use jitspmm_asm::{Assembler, Gpr};
//! use jitspmm_emu::Emulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Assembler::new();
//! asm.mov_rr64(Gpr::Rax, Gpr::Rdi);
//! asm.add_ri64(Gpr::Rax, 5);
//! asm.ret();
//! let code = asm.finalize()?;
//! let mut emu = Emulator::new();
//! // SAFETY: the code only touches registers.
//! let (counters, result) = unsafe { emu.run_with_result(&code, &[37])? };
//! assert_eq!(result, 42);
//! assert_eq!(counters.instructions, 3);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod cache;
mod counters;
mod decode;
mod error;
mod inst;
mod machine;

pub use cache::{CacheConfig, CacheModel};
pub use counters::{BranchPredictor, HwCounters};
pub use error::EmuError;
pub use inst::{AluOp, Inst, MemOperand, OpWidth, RmOperand, VecKind};

use machine::MachineState;

/// Sentinel return address marking the outermost frame.
const HALT_ADDRESS: u64 = u64::MAX;

/// Default ceiling on executed instructions (guards against emulating a
/// kernel that never terminates because of an encoder/emulator bug).
const DEFAULT_MAX_INSTRUCTIONS: u64 = 20_000_000_000;

/// An x86-64 subset emulator with an architectural event model.
#[derive(Debug)]
pub struct Emulator {
    max_instructions: u64,
    stack_bytes: usize,
}

impl Default for Emulator {
    fn default() -> Self {
        Emulator::new()
    }
}

impl Emulator {
    /// An emulator with default limits (20 G instructions, 1 MiB stack).
    pub fn new() -> Emulator {
        Emulator { max_instructions: DEFAULT_MAX_INSTRUCTIONS, stack_bytes: 1 << 20 }
    }

    /// Override the instruction ceiling (useful to keep tests fast).
    pub fn with_max_instructions(mut self, max: u64) -> Emulator {
        self.max_instructions = max;
        self
    }

    /// Execute `code` as a System V AMD64 function with up to six integer
    /// `args`, returning the event counters.
    ///
    /// # Errors
    ///
    /// Fails on instructions outside the supported subset, control flow that
    /// leaves the code buffer, or exceeding the instruction ceiling.
    ///
    /// # Safety
    ///
    /// The code is executed with *host* memory semantics: every address it
    /// computes is dereferenced for real. The caller must guarantee the code
    /// only accesses memory that is valid for the implied reads and writes —
    /// the same contract as running the code natively.
    pub unsafe fn run(&mut self, code: &[u8], args: &[u64]) -> Result<HwCounters, EmuError> {
        self.run_with_result(code, args).map(|(c, _)| c)
    }

    /// Like [`Emulator::run`] but also returns the function result (`rax` at
    /// the final `ret`).
    ///
    /// # Errors
    ///
    /// See [`Emulator::run`].
    ///
    /// # Safety
    ///
    /// See [`Emulator::run`].
    pub unsafe fn run_with_result(
        &mut self,
        code: &[u8],
        args: &[u64],
    ) -> Result<(HwCounters, u64), EmuError> {
        assert!(args.len() <= 6, "at most six integer arguments are supported");
        let mut state = MachineState::new(self.stack_bytes);
        state.set_args(args);
        state.push_u64(HALT_ADDRESS);

        let mut counters = HwCounters::default();
        let mut predictor = BranchPredictor::new();
        let mut cache: Vec<Option<(Inst, usize)>> = vec![None; code.len()];
        let mut rip: usize = 0;

        loop {
            if counters.instructions >= self.max_instructions {
                return Err(EmuError::InstructionLimit { limit: self.max_instructions });
            }
            if rip >= code.len() {
                return Err(EmuError::RipOutOfRange { rip });
            }
            let (inst, len) = match &cache[rip] {
                Some(entry) => entry.clone(),
                None => {
                    let decoded = decode::decode(code, rip)?;
                    cache[rip] = Some(decoded.clone());
                    decoded
                }
            };
            counters.instructions += 1;
            let next = rip + len;
            match state.execute(&inst, next as u64, &mut counters, &mut predictor)? {
                machine::Flow::Next => rip = next,
                machine::Flow::Jump(target) => {
                    if target == HALT_ADDRESS {
                        return Ok((counters, state.gpr(jitspmm_asm::Gpr::Rax)));
                    }
                    rip = target as usize;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitspmm_asm::{Assembler, Cond, Gpr, Mem, Scale};

    fn emulate(asm: Assembler, args: &[u64]) -> (HwCounters, u64) {
        let code = asm.finalize().unwrap();
        let mut emu = Emulator::new().with_max_instructions(10_000_000);
        unsafe { emu.run_with_result(&code, args).unwrap() }
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut asm = Assembler::new();
        asm.mov_ri64(Gpr::Rax, 40);
        asm.add_ri64(Gpr::Rax, 2);
        asm.ret();
        let (counters, result) = emulate(asm, &[]);
        assert_eq!(result, 42);
        assert_eq!(counters.instructions, 3);
        assert_eq!(counters.branches, 1); // ret
        assert_eq!(counters.memory_loads, 1); // ret pops the return address
    }

    #[test]
    fn loop_sums_first_n_integers() {
        let mut asm = Assembler::new();
        let (head, done) = {
            let mut l = || asm.new_label();
            (l(), l())
        };
        asm.xor_rr64(Gpr::Rax, Gpr::Rax);
        asm.xor_rr64(Gpr::Rcx, Gpr::Rcx);
        asm.bind(head).unwrap();
        asm.cmp_rr64(Gpr::Rcx, Gpr::Rdi);
        asm.jcc(Cond::Ge, done);
        asm.add_rr64(Gpr::Rax, Gpr::Rcx);
        asm.inc_r64(Gpr::Rcx);
        asm.jmp(head);
        asm.bind(done).unwrap();
        asm.ret();
        let (counters, result) = emulate(asm, &[100]);
        assert_eq!(result, 4950);
        assert!(counters.instructions > 500);
        assert!(counters.branches > 200);
        // A bimodal predictor learns a monotone loop almost perfectly.
        assert!(counters.branch_misses < 5, "misses = {}", counters.branch_misses);
    }

    #[test]
    fn memory_round_trip_counts_loads_and_stores() {
        // fn(src, dst): dst[0] = src[0] + src[1]
        let mut asm = Assembler::new();
        asm.mov_rm64(Gpr::Rax, Mem::base(Gpr::Rdi));
        asm.add_rm64(Gpr::Rax, Mem::base(Gpr::Rdi).disp(8));
        asm.mov_mr64(Mem::base(Gpr::Rsi), Gpr::Rax);
        asm.ret();
        let src = [30u64, 12u64];
        let mut dst = [0u64];
        let (counters, _) = emulate(asm, &[src.as_ptr() as u64, dst.as_mut_ptr() as u64]);
        assert_eq!(dst[0], 42);
        assert_eq!(counters.memory_loads, 3); // two data loads + ret
        assert_eq!(counters.memory_stores, 1);
    }

    #[test]
    fn lock_xadd_matches_hardware_semantics() {
        let mut asm = Assembler::new();
        asm.mov_rr64(Gpr::Rax, Gpr::Rsi);
        asm.lock_xadd_mr64(Mem::base(Gpr::Rdi), Gpr::Rax);
        asm.ret();
        let mut counter = 100u64;
        let (_, old) = emulate(asm, &[&mut counter as *mut u64 as u64, 28]);
        assert_eq!(old, 100);
        assert_eq!(counter, 128);
    }

    #[test]
    fn indexed_addressing_with_scale() {
        // fn(ptr, i) -> ptr[i] (u64 elements)
        let mut asm = Assembler::new();
        asm.mov_rm64(Gpr::Rax, Mem::base(Gpr::Rdi).index(Gpr::Rsi, Scale::S8));
        asm.ret();
        let data = [10u64, 20, 30, 40];
        let (_, v) = emulate(asm, &[data.as_ptr() as u64, 2]);
        assert_eq!(v, 30);
    }

    #[test]
    fn push_pop_round_trip() {
        let mut asm = Assembler::new();
        asm.mov_ri64(Gpr::Rbx, 77);
        asm.push_r64(Gpr::Rbx);
        asm.mov_ri64(Gpr::Rbx, 0);
        asm.pop_r64(Gpr::Rax);
        asm.ret();
        let (counters, v) = emulate(asm, &[]);
        assert_eq!(v, 77);
        assert_eq!(counters.memory_stores, 1);
        assert_eq!(counters.memory_loads, 2); // pop + ret
    }

    #[test]
    fn shifts_lea_and_imul() {
        // fn(a, b) -> ((a << 4) + b*24) >> 1
        let mut asm = Assembler::new();
        asm.shl_ri64(Gpr::Rdi, 4);
        asm.imul_rri64(Gpr::Rsi, Gpr::Rsi, 24);
        asm.lea(Gpr::Rax, Mem::base(Gpr::Rdi).index(Gpr::Rsi, Scale::S1));
        asm.shr_ri64(Gpr::Rax, 1);
        asm.ret();
        let (_, v) = emulate(asm, &[3, 5]);
        assert_eq!(v, ((3u64 << 4) + 5 * 24) >> 1);
    }

    #[test]
    fn unsupported_instruction_reports_offset() {
        // 0F 31 = rdtsc, not in the supported subset.
        let code = vec![0x0F, 0x31, 0xC3];
        let mut emu = Emulator::new();
        let err = unsafe { emu.run(&code, &[]) }.unwrap_err();
        match err {
            EmuError::Unsupported { offset, .. } => assert_eq!(offset, 0),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn instruction_limit_is_enforced() {
        let mut asm = Assembler::new();
        let l = asm.new_label();
        asm.bind(l).unwrap();
        asm.jmp(l);
        let code = asm.finalize().unwrap();
        let mut emu = Emulator::new().with_max_instructions(1000);
        let err = unsafe { emu.run(&code, &[]) }.unwrap_err();
        assert!(matches!(err, EmuError::InstructionLimit { .. }));
    }

    #[test]
    fn falling_off_the_end_is_detected() {
        // No ret: a single nop then out of bounds.
        let code = vec![0x90];
        let mut emu = Emulator::new();
        let err = unsafe { emu.run(&code, &[]) }.unwrap_err();
        assert!(matches!(err, EmuError::RipOutOfRange { .. }));
    }
}
