//! Machine state and instruction execution.

use crate::counters::{BranchPredictor, HwCounters};
use crate::error::EmuError;
use crate::inst::{AluOp, Inst, MemOperand, OpWidth, RmOperand, VecKind};
use jitspmm_asm::Cond;

/// Where execution continues after an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    /// Fall through to the next instruction.
    Next,
    /// Jump to an absolute code offset (or the halt sentinel).
    Jump(u64),
}

/// Architectural state: general-purpose registers, 32 512-bit vector
/// registers, the status flags the supported subset writes, and a private
/// stack used by `push`/`pop`/`ret`.
pub(crate) struct MachineState {
    gpr: [u64; 16],
    vec: [[u8; 64]; 32],
    cf: bool,
    zf: bool,
    sf: bool,
    of: bool,
    pf: bool,
    stack: Vec<u8>,
}

impl MachineState {
    pub(crate) fn new(stack_bytes: usize) -> MachineState {
        let stack = vec![0u8; stack_bytes];
        let mut state = MachineState {
            gpr: [0; 16],
            vec: [[0; 64]; 32],
            cf: false,
            zf: false,
            sf: false,
            of: false,
            pf: false,
            stack,
        };
        // rsp points at the top of the private stack (16-byte aligned).
        let top = state.stack.as_ptr() as u64 + state.stack.len() as u64;
        state.gpr[4] = top & !0xF;
        state
    }

    /// Load the System V integer argument registers.
    pub(crate) fn set_args(&mut self, args: &[u64]) {
        const ARG_REGS: [usize; 6] = [7, 6, 2, 1, 8, 9]; // rdi rsi rdx rcx r8 r9
        for (i, &v) in args.iter().enumerate() {
            self.gpr[ARG_REGS[i]] = v;
        }
    }

    /// Read a general-purpose register.
    pub(crate) fn gpr(&self, reg: jitspmm_asm::Gpr) -> u64 {
        self.gpr[reg.id() as usize]
    }

    /// Push a 64-bit value (used to seed the return address).
    pub(crate) fn push_u64(&mut self, value: u64) {
        self.gpr[4] = self.gpr[4].wrapping_sub(8);
        let addr = self.gpr[4];
        // SAFETY: rsp stays inside the private stack allocation for the
        // shallow frames the kernels use.
        unsafe { std::ptr::write_unaligned(addr as *mut u64, value) };
    }

    fn pop_u64(&mut self) -> u64 {
        let addr = self.gpr[4];
        // SAFETY: mirrors push_u64.
        let v = unsafe { std::ptr::read_unaligned(addr as *const u64) };
        self.gpr[4] = self.gpr[4].wrapping_add(8);
        v
    }

    fn addr_of(&self, mem: &MemOperand) -> u64 {
        let mut addr = self.gpr[mem.base as usize];
        if let Some((idx, scale)) = mem.index {
            addr = addr.wrapping_add(self.gpr[idx as usize] << scale);
        }
        addr.wrapping_add(mem.disp as i64 as u64)
    }

    fn read_rm(&self, rm: &RmOperand, width: OpWidth, counters: &mut HwCounters) -> u64 {
        match rm {
            RmOperand::Reg(r) => match width {
                OpWidth::W64 => self.gpr[*r as usize],
                OpWidth::W32 => self.gpr[*r as usize] & 0xFFFF_FFFF,
            },
            RmOperand::Mem(mem) => {
                counters.memory_loads += 1;
                let addr = self.addr_of(mem);
                // SAFETY: guaranteed by the caller of `Emulator::run`.
                unsafe {
                    match width {
                        OpWidth::W64 => std::ptr::read_unaligned(addr as *const u64),
                        OpWidth::W32 => std::ptr::read_unaligned(addr as *const u32) as u64,
                    }
                }
            }
        }
    }

    fn write_rm(&mut self, rm: &RmOperand, width: OpWidth, value: u64, counters: &mut HwCounters) {
        match rm {
            RmOperand::Reg(r) => self.write_reg(*r, width, value),
            RmOperand::Mem(mem) => {
                counters.memory_stores += 1;
                let addr = self.addr_of(mem);
                // SAFETY: guaranteed by the caller of `Emulator::run`.
                unsafe {
                    match width {
                        OpWidth::W64 => std::ptr::write_unaligned(addr as *mut u64, value),
                        OpWidth::W32 => std::ptr::write_unaligned(addr as *mut u32, value as u32),
                    }
                }
            }
        }
    }

    fn write_reg(&mut self, reg: u8, width: OpWidth, value: u64) {
        // 32-bit writes zero-extend, as on real hardware.
        self.gpr[reg as usize] = match width {
            OpWidth::W64 => value,
            OpWidth::W32 => value & 0xFFFF_FFFF,
        };
    }

    fn set_logic_flags(&mut self, result: u64) {
        self.cf = false;
        self.of = false;
        self.zf = result == 0;
        self.sf = (result as i64) < 0;
        self.pf = (result as u8).count_ones().is_multiple_of(2);
    }

    fn set_add_flags(&mut self, a: u64, b: u64, result: u64) {
        self.cf = result < a;
        self.zf = result == 0;
        self.sf = (result as i64) < 0;
        self.of = ((a ^ result) & (b ^ result)) >> 63 == 1;
        self.pf = (result as u8).count_ones().is_multiple_of(2);
    }

    fn set_sub_flags(&mut self, a: u64, b: u64, result: u64) {
        self.cf = a < b;
        self.zf = result == 0;
        self.sf = (result as i64) < 0;
        self.of = ((a ^ b) & (a ^ result)) >> 63 == 1;
        self.pf = (result as u8).count_ones().is_multiple_of(2);
    }

    fn eval_cond(&self, cond: u8) -> bool {
        Cond::ALL[cond as usize & 0xF].eval(self.cf, self.zf, self.sf, self.of, self.pf)
    }

    fn vec_read_mem(&self, mem: &MemOperand, bytes: usize, counters: &mut HwCounters) -> [u8; 64] {
        counters.memory_loads += 1;
        let addr = self.addr_of(mem);
        let mut out = [0u8; 64];
        // SAFETY: guaranteed by the caller of `Emulator::run`.
        unsafe {
            std::ptr::copy_nonoverlapping(addr as *const u8, out.as_mut_ptr(), bytes);
        }
        out
    }

    fn vec_rm(&self, rm: &RmOperand, bytes: usize, counters: &mut HwCounters) -> [u8; 64] {
        match rm {
            RmOperand::Reg(r) => self.vec[*r as usize],
            RmOperand::Mem(mem) => self.vec_read_mem(mem, bytes, counters),
        }
    }

    /// Element-wise `dst[i] = acc[i] op (a[i], b[i])` over `bytes` of lanes.
    fn lanewise(
        dst: &mut [u8; 64],
        a: &[u8; 64],
        b: &[u8; 64],
        kind: VecKind,
        bytes: usize,
        f32_op: impl Fn(f32, f32, f32) -> f32,
        f64_op: impl Fn(f64, f64, f64) -> f64,
    ) {
        match kind {
            VecKind::F32 => {
                for lane in 0..bytes / 4 {
                    let o = lane * 4;
                    let d = f32::from_le_bytes(dst[o..o + 4].try_into().unwrap());
                    let x = f32::from_le_bytes(a[o..o + 4].try_into().unwrap());
                    let y = f32::from_le_bytes(b[o..o + 4].try_into().unwrap());
                    dst[o..o + 4].copy_from_slice(&f32_op(d, x, y).to_le_bytes());
                }
            }
            VecKind::F64 => {
                for lane in 0..bytes / 8 {
                    let o = lane * 8;
                    let d = f64::from_le_bytes(dst[o..o + 8].try_into().unwrap());
                    let x = f64::from_le_bytes(a[o..o + 8].try_into().unwrap());
                    let y = f64::from_le_bytes(b[o..o + 8].try_into().unwrap());
                    dst[o..o + 8].copy_from_slice(&f64_op(d, x, y).to_le_bytes());
                }
            }
        }
    }

    /// Execute one decoded instruction. `next` is the fall-through offset.
    pub(crate) fn execute(
        &mut self,
        inst: &Inst,
        next: u64,
        counters: &mut HwCounters,
        predictor: &mut BranchPredictor,
    ) -> Result<Flow, EmuError> {
        let _ = next;
        match inst {
            Inst::Nop | Inst::VZeroUpper => {}
            Inst::MovRegImm { dst, imm } => self.gpr[*dst as usize] = *imm,
            Inst::MovRegRm { dst, src, width } => {
                let v = self.read_rm(src, *width, counters);
                self.write_reg(*dst, *width, v);
            }
            Inst::MovRmReg { dst, src, width } => {
                let v = match width {
                    OpWidth::W64 => self.gpr[*src as usize],
                    OpWidth::W32 => self.gpr[*src as usize] & 0xFFFF_FFFF,
                };
                self.write_rm(dst, *width, v, counters);
            }
            Inst::AluRmImm { op, dst, imm } => {
                let a = self.read_rm(dst, OpWidth::W64, counters);
                let b = *imm as u64;
                self.alu(*op, dst, a, b, counters);
            }
            Inst::AluRegRm { op, dst, src } => {
                let a = self.gpr[*dst as usize];
                let b = self.read_rm(src, OpWidth::W64, counters);
                self.alu(*op, &RmOperand::Reg(*dst), a, b, counters);
            }
            Inst::AluRmReg { op, dst, src } => {
                let a = self.read_rm(dst, OpWidth::W64, counters);
                let b = self.gpr[*src as usize];
                self.alu(*op, dst, a, b, counters);
            }
            Inst::IncDec { dst, dec } => {
                let a = self.read_rm(dst, OpWidth::W64, counters);
                let result = if *dec { a.wrapping_sub(1) } else { a.wrapping_add(1) };
                // INC/DEC leave CF untouched.
                let cf = self.cf;
                if *dec {
                    self.set_sub_flags(a, 1, result);
                } else {
                    self.set_add_flags(a, 1, result);
                }
                self.cf = cf;
                self.write_rm(dst, OpWidth::W64, result, counters);
            }
            Inst::Lea { dst, mem } => {
                let addr = self.addr_of(mem);
                self.gpr[*dst as usize] = addr;
            }
            Inst::ShiftImm { dst, left, amount } => {
                let a = self.read_rm(dst, OpWidth::W64, counters);
                let result = if *left { a << (amount & 63) } else { a >> (amount & 63) };
                self.set_logic_flags(result);
                self.write_rm(dst, OpWidth::W64, result, counters);
            }
            Inst::ImulRegRmImm { dst, src, imm } => {
                let a = self.read_rm(src, OpWidth::W64, counters) as i64;
                let result = a.wrapping_mul(*imm);
                self.gpr[*dst as usize] = result as u64;
                self.set_logic_flags(result as u64);
            }
            Inst::ImulRegRm { dst, src } => {
                let a = self.gpr[*dst as usize] as i64;
                let b = self.read_rm(src, OpWidth::W64, counters) as i64;
                let result = a.wrapping_mul(b);
                self.gpr[*dst as usize] = result as u64;
                self.set_logic_flags(result as u64);
            }
            Inst::Push { reg } => {
                counters.memory_stores += 1;
                let v = self.gpr[*reg as usize];
                self.push_u64(v);
            }
            Inst::Pop { reg } => {
                counters.memory_loads += 1;
                let v = self.pop_u64();
                self.gpr[*reg as usize] = v;
            }
            Inst::Xadd { mem, reg } => {
                counters.memory_loads += 1;
                counters.memory_stores += 1;
                let addr = self.addr_of(mem);
                let old: u64 =
                // SAFETY: guaranteed by the caller of `Emulator::run`.
                    unsafe { std::ptr::read_unaligned(addr as *const u64) };
                let add = self.gpr[*reg as usize];
                let result = old.wrapping_add(add);
                // SAFETY: as above.
                unsafe { std::ptr::write_unaligned(addr as *mut u64, result) };
                self.gpr[*reg as usize] = old;
                self.set_add_flags(old, add, result);
            }
            Inst::Ret => {
                counters.memory_loads += 1;
                counters.branches += 1;
                let target = self.pop_u64();
                return Ok(Flow::Jump(target));
            }
            Inst::Jmp { target } => {
                counters.branches += 1;
                return Ok(Flow::Jump(*target));
            }
            Inst::Jcc { cond, target } => {
                counters.branches += 1;
                let taken = self.eval_cond(*cond);
                // Index the predictor by the branch target's low bits, which
                // uniquely identify the branch site in our small kernels.
                if !predictor.predict_and_update(*target as usize ^ (*cond as usize), taken) {
                    counters.branch_misses += 1;
                }
                if taken {
                    return Ok(Flow::Jump(*target));
                }
            }
            Inst::VXor { dst, a, b, width_bytes } => {
                let mut out = [0u8; 64];
                let (va, vb) = (self.vec[*a as usize], self.vec[*b as usize]);
                for i in 0..*width_bytes {
                    out[i] = va[i] ^ vb[i];
                }
                self.vec[*dst as usize] = out;
            }
            Inst::VBroadcast { dst, src, kind, width_bytes } => {
                counters.memory_loads += 1;
                let addr = self.addr_of(src);
                let mut out = [0u8; 64];
                match kind {
                    VecKind::F32 => {
                        // SAFETY: guaranteed by the caller of `Emulator::run`.
                        let v = unsafe { std::ptr::read_unaligned(addr as *const u32) };
                        for lane in 0..width_bytes / 4 {
                            out[lane * 4..lane * 4 + 4].copy_from_slice(&v.to_le_bytes());
                        }
                    }
                    VecKind::F64 => {
                        // SAFETY: as above.
                        let v = unsafe { std::ptr::read_unaligned(addr as *const u64) };
                        for lane in 0..width_bytes / 8 {
                            out[lane * 8..lane * 8 + 8].copy_from_slice(&v.to_le_bytes());
                        }
                    }
                }
                self.vec[*dst as usize] = out;
            }
            Inst::VFmadd231 { dst, a, src, kind, width_bytes, scalar } => {
                let bytes = if *scalar { kind_bytes(*kind) } else { *width_bytes };
                let vb = self.vec_rm(src, bytes, counters);
                let va = self.vec[*a as usize];
                let mut vd = self.vec[*dst as usize];
                Self::lanewise(
                    &mut vd,
                    &va,
                    &vb,
                    *kind,
                    bytes,
                    |d, x, y| x.mul_add(y, d),
                    |d, x, y| x.mul_add(y, d),
                );
                self.vec[*dst as usize] = vd;
            }
            Inst::VMul { dst, a, src, kind, width_bytes, scalar } => {
                let bytes = if *scalar { kind_bytes(*kind) } else { *width_bytes };
                let vb = self.vec_rm(src, bytes, counters);
                let va = self.vec[*a as usize];
                let mut vd = self.vec[*dst as usize];
                Self::lanewise(&mut vd, &va, &vb, *kind, bytes, |_, x, y| x * y, |_, x, y| x * y);
                self.vec[*dst as usize] = vd;
            }
            Inst::VAdd { dst, a, src, kind, width_bytes, scalar } => {
                let bytes = if *scalar { kind_bytes(*kind) } else { *width_bytes };
                let vb = self.vec_rm(src, bytes, counters);
                let va = self.vec[*a as usize];
                let mut vd = self.vec[*dst as usize];
                Self::lanewise(&mut vd, &va, &vb, *kind, bytes, |_, x, y| x + y, |_, x, y| x + y);
                self.vec[*dst as usize] = vd;
            }
            Inst::VMovLoad { dst, src, width_bytes } => {
                let data = self.vec_read_mem(src, *width_bytes, counters);
                let mut out = [0u8; 64];
                out[..*width_bytes].copy_from_slice(&data[..*width_bytes]);
                self.vec[*dst as usize] = out;
            }
            Inst::VMovStore { dst, src, width_bytes } => {
                counters.memory_stores += 1;
                let addr = self.addr_of(dst);
                let data = self.vec[*src as usize];
                // SAFETY: guaranteed by the caller of `Emulator::run`.
                unsafe {
                    std::ptr::copy_nonoverlapping(data.as_ptr(), addr as *mut u8, *width_bytes);
                }
            }
        }
        Ok(Flow::Next)
    }

    fn alu(&mut self, op: AluOp, dst: &RmOperand, a: u64, b: u64, counters: &mut HwCounters) {
        match op {
            AluOp::Add => {
                let result = a.wrapping_add(b);
                self.set_add_flags(a, b, result);
                self.write_rm(dst, OpWidth::W64, result, counters);
            }
            AluOp::Sub => {
                let result = a.wrapping_sub(b);
                self.set_sub_flags(a, b, result);
                self.write_rm(dst, OpWidth::W64, result, counters);
            }
            AluOp::Cmp => {
                let result = a.wrapping_sub(b);
                self.set_sub_flags(a, b, result);
            }
            AluOp::Xor => {
                let result = a ^ b;
                self.set_logic_flags(result);
                self.write_rm(dst, OpWidth::W64, result, counters);
            }
            AluOp::Test => {
                let result = a & b;
                self.set_logic_flags(result);
            }
        }
    }
}

fn kind_bytes(kind: VecKind) -> usize {
    match kind {
        VecKind::F32 => 4,
        VecKind::F64 => 8,
    }
}
