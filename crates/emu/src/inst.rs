//! Decoded-instruction representation.

/// Element kind of a SIMD operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VecKind {
    /// 32-bit floats.
    F32,
    /// 64-bit floats.
    F64,
}

/// Operand width of a general-purpose operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpWidth {
    /// 32-bit (result zero-extended into the 64-bit register).
    W32,
    /// 64-bit.
    W64,
}

/// A decoded memory operand `[base + index * scale + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOperand {
    /// Base register id (0–15).
    pub base: u8,
    /// Optional `(register id, log2 scale)` index.
    pub index: Option<(u8, u8)>,
    /// Signed displacement.
    pub disp: i32,
}

/// A ModRM `r/m` operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmOperand {
    /// Direct register.
    Reg(u8),
    /// Memory reference.
    Mem(MemOperand),
}

/// Arithmetic/logic operations sharing the standard two-operand encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Addition (writes the destination and all flags).
    Add,
    /// Subtraction.
    Sub,
    /// Compare (subtraction that only writes flags).
    Cmp,
    /// Bitwise exclusive or.
    Xor,
    /// Logical compare (`and` that only writes flags).
    Test,
}

/// One decoded instruction of the supported subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `mov reg, imm` (32- or 64-bit immediate; always zero-extends).
    MovRegImm {
        /// Destination register.
        dst: u8,
        /// Immediate value.
        imm: u64,
    },
    /// `mov reg, r/m` (opcode `8B`).
    MovRegRm {
        /// Destination register.
        dst: u8,
        /// Source operand.
        src: RmOperand,
        /// Operand width.
        width: OpWidth,
    },
    /// `mov r/m, reg` (opcode `89`).
    MovRmReg {
        /// Destination operand.
        dst: RmOperand,
        /// Source register.
        src: u8,
        /// Operand width.
        width: OpWidth,
    },
    /// ALU operation with an immediate operand (`81`/`83` group).
    AluRmImm {
        /// Operation.
        op: AluOp,
        /// Destination operand.
        dst: RmOperand,
        /// Sign-extended immediate.
        imm: i64,
    },
    /// ALU operation, destination in the `reg` field (`03`, `2B`, `3B`, `33`).
    AluRegRm {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: u8,
        /// Source operand.
        src: RmOperand,
    },
    /// ALU operation, destination in the `r/m` field (`01`, `29`, `39`,
    /// `31`, `85`).
    AluRmReg {
        /// Operation.
        op: AluOp,
        /// Destination operand.
        dst: RmOperand,
        /// Source register.
        src: u8,
    },
    /// `inc`/`dec` on a register or memory operand.
    IncDec {
        /// Target operand.
        dst: RmOperand,
        /// `true` for `dec`.
        dec: bool,
    },
    /// `lea reg, [mem]`.
    Lea {
        /// Destination register.
        dst: u8,
        /// Address expression.
        mem: MemOperand,
    },
    /// `shl`/`shr` by an immediate count.
    ShiftImm {
        /// Target operand.
        dst: RmOperand,
        /// `true` for a left shift.
        left: bool,
        /// Shift amount.
        amount: u8,
    },
    /// `imul reg, r/m, imm32`.
    ImulRegRmImm {
        /// Destination register.
        dst: u8,
        /// Source operand.
        src: RmOperand,
        /// Immediate multiplier.
        imm: i64,
    },
    /// `imul reg, r/m`.
    ImulRegRm {
        /// Destination register.
        dst: u8,
        /// Source operand.
        src: RmOperand,
    },
    /// `push reg`.
    Push {
        /// Register pushed.
        reg: u8,
    },
    /// `pop reg`.
    Pop {
        /// Register popped into.
        reg: u8,
    },
    /// `xadd [mem], reg` (optionally `lock`-prefixed).
    Xadd {
        /// Memory operand.
        mem: MemOperand,
        /// Register operand (receives the old memory value).
        reg: u8,
    },
    /// `ret`.
    Ret,
    /// `nop` / `pause`.
    Nop,
    /// `jmp rel32`, target resolved to an absolute code offset.
    Jmp {
        /// Absolute target offset.
        target: u64,
    },
    /// `jcc rel32`, target resolved to an absolute code offset.
    Jcc {
        /// Condition code (0–15).
        cond: u8,
        /// Absolute target offset.
        target: u64,
    },
    /// `vxorps`/`vpxord`: bitwise xor of two vector registers.
    VXor {
        /// Destination vector register.
        dst: u8,
        /// First source.
        a: u8,
        /// Second source.
        b: u8,
        /// Operation width in bytes (16/32/64).
        width_bytes: usize,
    },
    /// `vbroadcastss`/`vbroadcastsd` from memory.
    VBroadcast {
        /// Destination vector register.
        dst: u8,
        /// Source element address.
        src: MemOperand,
        /// Element kind.
        kind: VecKind,
        /// Destination width in bytes.
        width_bytes: usize,
    },
    /// `vfmadd231ps/pd/ss/sd`: `dst += a * src`.
    VFmadd231 {
        /// Destination (accumulator) register.
        dst: u8,
        /// Multiplier register.
        a: u8,
        /// Second multiplier operand (register or memory).
        src: RmOperand,
        /// Element kind.
        kind: VecKind,
        /// Operation width in bytes.
        width_bytes: usize,
        /// `true` for the scalar (`ss`/`sd`) forms.
        scalar: bool,
    },
    /// `vmulps/ss/sd` (and `pd`): `dst = a * src`.
    VMul {
        /// Destination register.
        dst: u8,
        /// First source register.
        a: u8,
        /// Second source operand.
        src: RmOperand,
        /// Element kind.
        kind: VecKind,
        /// Operation width in bytes.
        width_bytes: usize,
        /// Scalar form.
        scalar: bool,
    },
    /// `vaddps/ss/sd` (and `pd`): `dst = a + src`.
    VAdd {
        /// Destination register.
        dst: u8,
        /// First source register.
        a: u8,
        /// Second source operand.
        src: RmOperand,
        /// Element kind.
        kind: VecKind,
        /// Operation width in bytes.
        width_bytes: usize,
        /// Scalar form.
        scalar: bool,
    },
    /// `vmovups/upd/ss/sd` load from memory.
    VMovLoad {
        /// Destination register.
        dst: u8,
        /// Source address.
        src: MemOperand,
        /// Width in bytes (4/8 for scalar forms).
        width_bytes: usize,
    },
    /// `vmovups/upd/ss/sd` store to memory.
    VMovStore {
        /// Destination address.
        dst: MemOperand,
        /// Source register.
        src: u8,
        /// Width in bytes (4/8 for scalar forms).
        width_bytes: usize,
    },
    /// `vzeroupper`.
    VZeroUpper,
}
