//! Differential testing: programs assembled with `jitspmm-asm` are executed
//! both natively (through `ExecutableBuffer`) and under the emulator, and the
//! results must agree. This closes the loop between the encoder and the
//! decoder/interpreter — a bug in either shows up as a divergence.

use jitspmm_asm::{Assembler, Cond, ExecutableBuffer, Gpr, Mem, Scale, VecReg, Xmm};
use jitspmm_emu::Emulator;
use proptest::prelude::*;

/// Assemble, run natively, run emulated, and compare the u64 result.
fn compare_u64(build: impl Fn(&mut Assembler), args: &[u64]) -> (u64, u64) {
    let mut asm = Assembler::new();
    build(&mut asm);
    asm.ret();
    let code = asm.finalize().expect("finalize");

    let buf = ExecutableBuffer::from_code(&code).expect("exec alloc");
    let native = match args.len() {
        0 => {
            let f: extern "C" fn() -> u64 = unsafe { buf.as_fn0() };
            f()
        }
        1 => {
            let f: extern "C" fn(u64) -> u64 = unsafe { buf.as_fn1() };
            f(args[0])
        }
        2 => {
            let f: extern "C" fn(u64, u64) -> u64 = unsafe { buf.as_fn2() };
            f(args[0], args[1])
        }
        3 => {
            let f: extern "C" fn(u64, u64, u64) -> u64 = unsafe { buf.as_fn3() };
            f(args[0], args[1], args[2])
        }
        _ => panic!("unsupported arity"),
    };

    let mut emu = Emulator::new().with_max_instructions(10_000_000);
    let (_, emulated) = unsafe { emu.run_with_result(&code, args).expect("emulation") };
    (native, emulated)
}

#[test]
fn arithmetic_sequences_agree() {
    let (native, emulated) = compare_u64(
        |asm| {
            asm.mov_rr64(Gpr::Rax, Gpr::Rdi);
            asm.add_rr64(Gpr::Rax, Gpr::Rsi);
            asm.sub_ri64(Gpr::Rax, 17);
            asm.shl_ri64(Gpr::Rax, 2);
            asm.imul_rri64(Gpr::Rax, Gpr::Rax, 3);
            asm.add_ri64(Gpr::Rax, 1 << 20);
        },
        &[123456, 7890],
    );
    assert_eq!(native, emulated);
}

#[test]
fn branchy_max_function_agrees() {
    let build = |asm: &mut Assembler| {
        let done = asm.new_label();
        asm.mov_rr64(Gpr::Rax, Gpr::Rdi);
        asm.cmp_rr64(Gpr::Rdi, Gpr::Rsi);
        // `jae`: unsigned comparison, matching u64::max below.
        asm.jcc(Cond::Ae, done);
        asm.mov_rr64(Gpr::Rax, Gpr::Rsi);
        asm.bind(done).unwrap();
    };
    for (a, b) in [(1u64, 2u64), (2, 1), (5, 5), (u64::MAX, 0)] {
        let (native, emulated) = compare_u64(build, &[a, b]);
        assert_eq!(native, emulated, "max({a}, {b})");
        assert_eq!(native, a.max(b));
    }
}

#[test]
fn float_dot_product_agrees_bit_exactly() {
    if !jitspmm_asm::CpuFeatures::detect().has_fma() {
        eprintln!("skipping: no FMA");
        return;
    }
    // fn(a_ptr, b_ptr, n) -> f32 bits of the dot product
    let build = |asm: &mut Assembler| {
        let (head, done) = (asm.new_label(), asm.new_label());
        let acc = Xmm::new(0);
        asm.vxorps(VecReg::from(acc), VecReg::from(acc), VecReg::from(acc));
        asm.xor_rr64(Gpr::Rax, Gpr::Rax);
        asm.bind(head).unwrap();
        asm.cmp_rr64(Gpr::Rax, Gpr::Rdx);
        asm.jcc(Cond::Ge, done);
        asm.vmovss_load(Xmm::new(1), Mem::base(Gpr::Rdi).index(Gpr::Rax, Scale::S4));
        asm.vfmadd231ss_m(acc, Xmm::new(1), Mem::base(Gpr::Rsi).index(Gpr::Rax, Scale::S4));
        asm.inc_r64(Gpr::Rax);
        asm.jmp(head);
        asm.bind(done).unwrap();
        // Store the accumulator to the stack-free scratch: reuse b[0]'s slot
        // is unsafe for comparison, so return its bit pattern via memory.
        asm.vmovss_store(Mem::base(Gpr::Rdi), acc);
        asm.mov_rm32(Gpr::Rax, Mem::base(Gpr::Rdi));
    };
    let a: Vec<f32> = (0..31).map(|i| (i as f32) * 0.25 - 3.0).collect();
    let b: Vec<f32> = (0..31).map(|i| ((i * 7 % 11) as f32) * 0.5).collect();
    let mut a1 = a.clone();
    let mut a2 = a.clone();
    // Native run mutates a1[0]; emulated run mutates a2[0]; compare results.
    let mut asm = Assembler::new();
    build(&mut asm);
    asm.ret();
    let code = asm.finalize().unwrap();
    let buf = ExecutableBuffer::from_code(&code).unwrap();
    let f: extern "C" fn(*mut f32, *const f32, u64) -> u64 =
        unsafe { std::mem::transmute(buf.entry()) };
    let native = f(a1.as_mut_ptr(), b.as_ptr(), a.len() as u64);
    let mut emu = Emulator::new().with_max_instructions(1_000_000);
    let (_, emulated) = unsafe {
        emu.run_with_result(&code, &[a2.as_mut_ptr() as u64, b.as_ptr() as u64, a.len() as u64])
            .unwrap()
    };
    assert_eq!(native as u32, emulated as u32, "dot products must agree bit-exactly");
    let expected: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
    // FMA-accumulated result may differ from the two-rounding sum by ulps.
    assert!((f32::from_bits(native as u32) - expected).abs() < 1e-3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random straight-line ALU programs produce identical results natively
    /// and under emulation.
    #[test]
    fn random_alu_programs_agree(
        ops in proptest::collection::vec((0u8..7, 0u8..4, -1000i32..1000), 1..20),
        args in proptest::array::uniform2(0u64..1_000_000),
    ) {
        // Registers rax, rdi, rsi, rcx form the working set.
        let regs = [Gpr::Rax, Gpr::Rdi, Gpr::Rsi, Gpr::Rcx];
        let build = |asm: &mut Assembler| {
            asm.xor_rr64(Gpr::Rax, Gpr::Rax);
            asm.xor_rr64(Gpr::Rcx, Gpr::Rcx);
            for &(op, reg_idx, imm) in &ops {
                let reg = regs[reg_idx as usize];
                match op {
                    0 => asm.add_ri64(reg, imm),
                    1 => asm.sub_ri64(reg, imm),
                    2 => asm.add_rr64(Gpr::Rax, reg),
                    3 => asm.sub_rr64(Gpr::Rax, reg),
                    4 => asm.imul_rri64(reg, reg, (imm % 17).max(1)),
                    5 => asm.shl_ri64(reg, (imm.unsigned_abs() % 8) as u8),
                    _ => asm.xor_rr64(Gpr::Rax, reg),
                }
            }
        };
        let (native, emulated) = compare_u64(build, &args);
        prop_assert_eq!(native, emulated);
    }

    /// Conditional-jump behaviour over random comparison values agrees with
    /// native execution for every condition code we emit.
    #[test]
    fn conditional_branches_agree(a in any::<i64>(), b in any::<i64>(), cond_idx in 0usize..6) {
        let cond = [Cond::E, Cond::Ne, Cond::L, Cond::Ge, Cond::Le, Cond::G][cond_idx];
        let build = |asm: &mut Assembler| {
            let taken = asm.new_label();
            asm.cmp_rr64(Gpr::Rdi, Gpr::Rsi);
            asm.jcc(cond, taken);
            asm.mov_ri64(Gpr::Rax, 0);
            asm.ret();
            asm.bind(taken).unwrap();
            asm.mov_ri64(Gpr::Rax, 1);
        };
        let (native, emulated) = compare_u64(build, &[a as u64, b as u64]);
        prop_assert_eq!(native, emulated);
    }
}
