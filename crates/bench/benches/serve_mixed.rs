//! Mixed multi-engine serving benchmark: an [`SpmmServer`] routing an
//! interleaved 2-4-engine request stream across one shared pool, versus
//! running the same engines **serially** (engine by engine, a blocking
//! `execute` loop each) — the configuration the serving router exists to
//! beat. Inputs are handed to the server by value, as a real ingestion path
//! would, so the mixed numbers include the owned-request hand-off.
//!
//! Run with: `cargo bench -p jitspmm-bench --bench serve_mixed`
//! (add `-- --quick` for a fast pass). Emits a human-readable table on
//! stdout and machine-readable JSON to `BENCH_serve_mixed.json` — including
//! the host core count, so the perf trajectory stays interpretable across
//! hardware changes.

use jitspmm::baseline::scalar::spmm_scalar_serve_mixed;
use jitspmm::serve::{ServerRequest, SpmmServer};
use jitspmm::{CpuFeatures, JitSpmmBuilder, Strategy, WorkerPool};
use jitspmm_bench::{
    emit_bench_json, geometric_mean, host_cores, json_stats, measure_interleaved, TextTable,
};
use jitspmm_sparse::{generate, CsrMatrix, DenseMatrix};

/// Requests routed to each engine per serving run.
const REQUESTS_PER_ENGINE: usize = 12;

/// The heterogeneous engine mix: different shapes, column counts and
/// strategies, as a server juggling several compiled models would hold.
fn engine_specs() -> Vec<(&'static str, CsrMatrix<f32>, usize, Strategy)> {
    vec![
        (
            "uniform-20k",
            generate::uniform(1_200, 1_200, 20_000, 5),
            16,
            Strategy::row_split_dynamic_default(),
        ),
        (
            "powerlaw-30k",
            generate::rmat(11, 30_000, generate::RmatConfig::GRAPH500, 6),
            8,
            Strategy::RowSplitStatic,
        ),
        (
            "uniform-8k",
            generate::uniform(800, 600, 8_000, 7),
            32,
            Strategy::RowSplitDynamic { batch: 32 },
        ),
        (
            "powerlaw-15k",
            generate::rmat(10, 15_000, generate::RmatConfig::WEB, 8),
            16,
            Strategy::RowSplitStatic,
        ),
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let features = CpuFeatures::detect();
    if !(features.avx && features.has_fma()) {
        eprintln!("serve_mixed: host lacks AVX/FMA, skipping");
        return;
    }
    let cores = host_cores();
    // At least two workers, so routed launches can overlap the submitting
    // thread — the configuration serving exists for.
    let workers = cores.max(2);
    let reps = if quick { 4 } else { 12 };
    println!(
        "mixed-engine serving: SpmmServer routed stream vs serial engine-by-engine loop \
         ({workers} pool workers, {cores} host cores, {REQUESTS_PER_ENGINE} requests/engine)\n"
    );

    let specs = engine_specs();
    let mut table = TextTable::new(&[
        "engines",
        "requests",
        "serial/run",
        "mixed/run",
        "speedup(mean)",
        "req/s(mixed)",
        "max kernel p99",
    ]);
    let mut json_rows = Vec::new();
    let mut speedups = Vec::new();

    for engine_count in [2usize, 3, 4] {
        let picked = &specs[..engine_count];
        let pool = WorkerPool::new(workers);
        // Spread the pool across engines: each engine lane-capped so
        // concurrent requests for different engines land on disjoint worker
        // subsets.
        let lanes_per_engine = (workers / engine_count).max(1);
        let engines: Vec<_> = picked
            .iter()
            .map(|(_, matrix, d, strategy)| {
                JitSpmmBuilder::new()
                    .pool(pool.clone())
                    .threads(lanes_per_engine)
                    .strategy(*strategy)
                    .build(matrix, *d)
                    .expect("JIT compilation failed")
            })
            .collect();

        // The mixed stream template: round-robin interleaved engine tags.
        let total = engine_count * REQUESTS_PER_ENGINE;
        let template: Vec<(usize, DenseMatrix<f32>)> = (0..total)
            .map(|i| {
                let engine = i % engine_count;
                let (_, matrix, d, _) = &picked[engine];
                (engine, DenseMatrix::random(matrix.ncols(), *d, 400 + i as u64))
            })
            .collect();

        // Correctness first: the routed results must agree with the serial
        // scalar serving anchor on every request.
        let matrices: Vec<&CsrMatrix<f32>> = picked.iter().map(|(_, m, _, _)| m).collect();
        let anchors = spmm_scalar_serve_mixed(&matrices, &template);
        let server = SpmmServer::new(engines).expect("engines share one pool");
        let requests: Vec<ServerRequest<f32>> = template
            .iter()
            .map(|(engine, input)| ServerRequest::new(*engine, input.clone()))
            .collect();
        let (responses, _) = server.serve_batch(0, requests).expect("serving failed");
        for (response, anchor) in responses.iter().zip(&anchors) {
            assert!(
                response.output().approx_eq(anchor, 1e-3),
                "engine {}: mixed serving result mismatch",
                response.engine()
            );
        }
        drop(responses);

        // Per-engine input lists for the serial configuration (borrowed, no
        // hand-off cost: the serial loop is given every advantage).
        let per_engine: Vec<Vec<&DenseMatrix<f32>>> = (0..engine_count)
            .map(|e| template.iter().filter(|(engine, _)| *engine == e).map(|(_, x)| x).collect())
            .collect();

        // Owned request vectors are materialized up front — one per
        // repetition plus the warm-up — so the timed mixed runs measure
        // routing and execution, not input cloning (a real ingestion path
        // receives its owned inputs from outside the serving loop too).
        let make_requests = || -> Vec<ServerRequest<f32>> {
            template
                .iter()
                .map(|(engine, input)| ServerRequest::new(*engine, input.clone()))
                .collect()
        };
        let mut prepared: Vec<Vec<ServerRequest<f32>>> =
            (0..reps + 1).map(|_| make_requests()).collect();

        let mut last_report = None;
        let (serial, mixed) = measure_interleaved(
            reps,
            || {
                // Engine by engine, blocking execute per request.
                for (e, inputs) in per_engine.iter().enumerate() {
                    for x in inputs {
                        let _ = server.single(e).unwrap().execute(x).unwrap();
                    }
                }
            },
            || {
                let requests = prepared.pop().unwrap_or_else(make_requests);
                let (responses, report) = server.serve_batch(0, requests).unwrap();
                drop(responses);
                last_report = Some(report);
            },
        );
        let report = last_report.expect("at least one measured run");
        let speedup_mean = serial.mean.as_secs_f64() / mixed.mean.as_secs_f64();
        speedups.push(speedup_mean);
        let throughput_mixed = total as f64 / mixed.mean.as_secs_f64();
        let throughput_serial = total as f64 / serial.mean.as_secs_f64();
        let max_p99 = report.per_engine.iter().map(|r| r.kernel_p99).max().unwrap_or_default();

        table.row(vec![
            engine_count.to_string(),
            total.to_string(),
            format!("{:?}", serial.mean),
            format!("{:?}", mixed.mean),
            format!("{speedup_mean:.2}x"),
            format!("{throughput_mixed:.0}"),
            format!("{max_p99:?}"),
        ]);
        let per_engine_json: Vec<String> = report
            .per_engine
            .iter()
            .enumerate()
            .map(|(e, r)| {
                format!(
                    r#"{{"engine": {e}, "name": "{}", "inputs": {}, "kernel_p50_ns": {}, "kernel_p99_ns": {}, "dispatch_p50_ns": {}, "dispatch_p99_ns": {}}}"#,
                    picked[e].0,
                    r.inputs,
                    r.kernel_p50.as_nanos(),
                    r.kernel_p99.as_nanos(),
                    r.dispatch_p50.as_nanos(),
                    r.dispatch_p99.as_nanos(),
                )
            })
            .collect();
        json_rows.push(format!(
            r#"    {{"engines": {engine_count}, "requests": {total}, "lanes_per_engine": {lanes_per_engine}, "serial": {}, "mixed": {}, "speedup_mean": {speedup_mean:.4}, "throughput_serial_mean": {throughput_serial:.2}, "throughput_mixed_mean": {throughput_mixed:.2}, "per_engine": [{}]}}"#,
            json_stats(&serial),
            json_stats(&mixed),
            per_engine_json.join(", "),
        ));
    }

    table.print();
    let headline = geometric_mean(&speedups);
    println!(
        "\nmixed serving vs serial engine loop (geometric mean over engine counts, by mean \
         time): {headline:.2}x"
    );
    println!(
        "(on a single-core host every engine degrades to its sequential fast path, so the \
         router's bookkeeping is pure overhead and <1x is expected; on multi-core the \
         overlap across engines' disjoint lanes is what this bench tracks)"
    );

    let json = format!(
        "{{\n  \"bench\": \"serve_mixed\",\n  \"requests_per_engine\": {REQUESTS_PER_ENGINE},\n  \"pool_workers\": {workers},\n  \"host_cores\": {cores},\n  \"results\": [\n{}\n  ],\n  \"mixed_vs_serial_speedup_mean\": {headline:.4}\n}}\n",
        json_rows.join(",\n"),
    );
    emit_bench_json("BENCH_serve_mixed.json", &json);
}
