//! Criterion benchmark for experiment E1 (Table II): single-thread scalar
//! AOT baselines versus the scalar JIT kernel, d = 8.

use criterion::{criterion_group, criterion_main, Criterion};
use jitspmm::baseline::{run_scalar_baseline, Baseline};
use jitspmm::{CpuFeatures, IsaLevel, JitSpmmBuilder, Strategy};
use jitspmm_sparse::{generate, DenseMatrix};
use std::hint::black_box;

fn bench_scalar_single_thread(c: &mut Criterion) {
    let matrix = generate::rmat::<f32>(12, 60_000, generate::RmatConfig::WEB, 202);
    let d = 8;
    let x = DenseMatrix::random(matrix.ncols(), d, 1);
    let mut group = c.benchmark_group("table2_scalar_single_thread");
    group.sample_size(10);

    for baseline in Baseline::table2_set() {
        let mut y = DenseMatrix::zeros(matrix.nrows(), d);
        group.bench_function(baseline.name(), |b| {
            b.iter(|| {
                run_scalar_baseline(baseline, black_box(&matrix), black_box(&x), &mut y);
            })
        });
    }

    let features = CpuFeatures::detect();
    if features.avx && features.has_fma() {
        let engine = JitSpmmBuilder::new()
            .strategy(Strategy::RowSplitStatic)
            .isa(IsaLevel::Scalar)
            .threads(1)
            .build(&matrix, d)
            .expect("JIT compilation failed");
        let mut y = DenseMatrix::zeros(matrix.nrows(), d);
        group.bench_function("jit-scalar", |b| {
            b.iter(|| {
                engine.execute_single_thread(black_box(&x), &mut y).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalar_single_thread);
criterion_main!(benches);
