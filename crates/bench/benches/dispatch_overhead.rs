//! Dispatch-overhead benchmark: spawn-per-call (the pre-runtime dispatch
//! path, `JitSpmm::execute_into_spawning`) versus persistent-pool dispatch
//! (`execute_into`) and pooled-output execution (`execute`), across matrix
//! sizes at `d = 16`.
//!
//! The point of the persistent runtime is that steady-state per-call latency
//! should track kernel time, not thread-spawn time; on small matrices the
//! spawn cost dominates and the pooled path must win by a wide margin, while
//! on large matrices the two converge because the kernel amortizes dispatch.
//!
//! Run with: `cargo bench -p jitspmm-bench --bench dispatch_overhead`
//! (add `-- --quick` for a fast pass). Emits a human-readable table on
//! stdout and machine-readable JSON to `BENCH_dispatch_overhead.json` so the
//! perf trajectory can be tracked across commits.

use jitspmm::{CpuFeatures, JitSpmmBuilder, Strategy, WakeSlot, WorkerPool};
use jitspmm_bench::{json_stats, measure, Stats, TextTable};
use jitspmm_sparse::{generate, CsrMatrix, DenseMatrix};
use std::time::{Duration, Instant};

const D: usize = 16;

struct Workload {
    name: &'static str,
    matrix: CsrMatrix<f32>,
    reps: usize,
}

fn workloads(quick: bool) -> Vec<Workload> {
    let scale = |reps: usize| if quick { (reps / 10).max(3) } else { reps };
    vec![
        Workload {
            name: "tiny-2k",
            matrix: generate::uniform(512, 512, 2_000, 1),
            reps: scale(500),
        },
        Workload {
            name: "small-10k",
            matrix: generate::uniform(1_000, 1_000, 10_000, 2),
            reps: scale(500),
        },
        Workload {
            name: "mid-100k",
            matrix: generate::rmat(12, 100_000, generate::RmatConfig::WEB, 3),
            reps: scale(100),
        },
        Workload {
            name: "large-1m",
            matrix: generate::rmat(14, 1_000_000, generate::RmatConfig::GRAPH500, 4),
            reps: scale(30),
        },
    ]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let features = CpuFeatures::detect();
    if !(features.avx && features.has_fma()) {
        eprintln!("dispatch_overhead: host lacks AVX/FMA, skipping");
        return;
    }
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    println!("dispatch overhead: spawn-per-call vs persistent pool (d = {D}, {threads} lanes)\n");

    let mut table = TextTable::new(&[
        "matrix",
        "nnz",
        "spawn/call",
        "pooled/call",
        "execute/call",
        "speedup",
        "kernel",
        "dispatch",
        "wake p50/p99",
    ]);
    let mut json_rows = Vec::new();

    for w in workloads(quick) {
        let x = DenseMatrix::random(w.matrix.ncols(), D, 7);
        let engine = JitSpmmBuilder::new()
            .strategy(Strategy::row_split_dynamic_default())
            .build(&w.matrix, D)
            .expect("JIT compilation failed");
        let mut y = DenseMatrix::zeros(w.matrix.nrows(), D);

        // Correctness first: the pooled path must agree with the reference.
        let expected = w.matrix.spmm_reference(&x);
        engine.execute_into(&x, &mut y).unwrap();
        assert!(y.approx_eq(&expected, 1e-3), "{}: pooled result mismatch", w.name);

        let spawn = measure(w.reps, || {
            engine.execute_into_spawning(&x, &mut y).unwrap();
        });
        let pooled = measure(w.reps, || {
            engine.execute_into(&x, &mut y).unwrap();
        });
        // Full execute(): pooled dispatch plus recycled output buffers.
        let pooled_execute = measure(w.reps, || {
            let _ = engine.execute(&x).unwrap();
        });
        let report = engine.execute_into(&x, &mut y).unwrap();
        let speedup = spawn.best.as_secs_f64() / pooled.best.as_secs_f64();

        // Wake (enqueue -> first worker claim) latency of the deferred
        // launch path — what the futex word replaces a condvar handoff for.
        // A blocking execute usually claims its own job before any worker
        // wakes, so the honest sample comes from a pipelined batch.
        let wake_inputs: Vec<DenseMatrix<f32>> = (0..if quick { 8 } else { 32 })
            .map(|i| DenseMatrix::random(w.matrix.ncols(), D, 9_000 + i as u64))
            .collect();
        let (outputs, batch_report) = engine
            .pool()
            .scope(|scope| engine.execute_batch(scope, &wake_inputs))
            .expect("wake batch failed");
        drop(outputs);
        let (wake_p50, wake_p99) = (batch_report.wake_p50, batch_report.wake_p99);

        table.row(vec![
            w.name.to_string(),
            w.matrix.nnz().to_string(),
            format!("{:?}", spawn.best),
            format!("{:?}", pooled.best),
            format!("{:?}", pooled_execute.best),
            format!("{speedup:.2}x"),
            format!("{:?}", report.kernel),
            format!("{:?}", report.dispatch),
            format!("{wake_p50:?} / {wake_p99:?}"),
        ]);
        json_rows.push(format!(
            r#"    {{"matrix": "{}", "rows": {}, "nnz": {}, "spawn": {}, "pooled": {}, "pooled_execute": {}, "speedup_best": {:.4}, "kernel_ns": {}, "dispatch_ns": {}, "wake_p50_ns": {}, "wake_p99_ns": {}}}"#,
            w.name,
            w.matrix.nrows(),
            w.matrix.nnz(),
            json_stats(&spawn),
            json_stats(&pooled),
            json_stats(&pooled_execute),
            speedup,
            report.kernel.as_nanos(),
            report.dispatch.as_nanos(),
            wake_p50.as_nanos(),
            wake_p99.as_nanos(),
        ));
    }

    table.print();
    println!("\n(speedup = spawn-per-call best / pooled best; the acceptance bar is >= 2x");
    println!(" on the <= 10k-nnz matrix — spawn cost is fixed, kernel time is not)");

    // ---- Overlapped-engines scenario -------------------------------------
    //
    // The concurrent-serving configuration the deferred-submission runtime
    // exists for: two client threads, each owning an engine lane-capped to
    // one worker of a shared two-worker pool, each streaming executions of
    // its own job. "Serialized" reproduces the pre-queue pool semantics —
    // one launch at a time, enforced by a lock, so every pair of jobs pays a
    // lock handoff (futex wake + context switch) on the critical path
    // between them. "Overlapped" submits both jobs concurrently: the queue
    // pipelines them onto disjoint lane-capped worker subsets (and, on a
    // multi-core host, runs their kernels genuinely in parallel), so the
    // handoff disappears. Reported per batch of pairs; best-of-samples.
    let overlap_batch: usize = 64;
    let overlap_samples = if quick { 10 } else { 40 };
    let pool = WorkerPool::new(2);
    let a1: CsrMatrix<f32> = generate::uniform(512, 512, 2_000, 21);
    let a2: CsrMatrix<f32> = generate::uniform(512, 512, 2_000, 22);
    let x1 = DenseMatrix::random(a1.ncols(), D, 8);
    let x2 = DenseMatrix::random(a2.ncols(), D, 9);
    let e1 = JitSpmmBuilder::new()
        .strategy(Strategy::row_split_dynamic_default())
        .threads(1)
        .pool(pool.clone())
        .build(&a1, D)
        .expect("JIT compilation failed");
    let e2 = JitSpmmBuilder::new()
        .strategy(Strategy::row_split_dynamic_default())
        .threads(1)
        .pool(pool.clone())
        .build(&a2, D)
        .expect("JIT compilation failed");
    pool.scope(|scope| {
        let (y1, _) = e1.execute_async(scope, &x1).expect("launch failed").wait();
        assert!(y1.approx_eq(&a1.spmm_reference(&x1), 1e-3), "overlap: engine 1 mismatch");
        drop(y1);
        let (y2, _) = e2.execute_async(scope, &x2).expect("launch failed").wait();
        assert!(y2.approx_eq(&a2.spmm_reference(&x2), 1e-3), "overlap: engine 2 mismatch");
        drop(y2);
    });

    // One batch: both client threads issue `overlap_batch` executions each
    // (each inside its own pool scope), serialized by `lock` when given;
    // returns the wall time to drain both.
    let run_batch = |serialize: Option<&std::sync::Mutex<()>>| -> Duration {
        let barrier = std::sync::Barrier::new(2);
        let mut elapsed = Duration::ZERO;
        std::thread::scope(|threads| {
            let client = threads.spawn(|| {
                pool.scope(|scope| {
                    barrier.wait();
                    for _ in 0..overlap_batch {
                        let _guard = serialize.map(|m| m.lock().unwrap());
                        let _ = e1.execute_async(scope, &x1).unwrap().wait();
                    }
                });
            });
            barrier.wait();
            let start = Instant::now();
            pool.scope(|scope| {
                for _ in 0..overlap_batch {
                    let _guard = serialize.map(|m| m.lock().unwrap());
                    let _ = e2.execute_async(scope, &x2).unwrap().wait();
                }
            });
            client.join().unwrap();
            elapsed = start.elapsed();
        });
        elapsed
    };
    let lock = std::sync::Mutex::new(());
    run_batch(Some(&lock)); // warm-up
    run_batch(None);
    let (mut ser_best, mut ser_total) = (Duration::MAX, Duration::ZERO);
    let (mut ovl_best, mut ovl_total) = (Duration::MAX, Duration::ZERO);
    for _ in 0..overlap_samples {
        let s = run_batch(Some(&lock));
        ser_best = ser_best.min(s);
        ser_total += s;
        let o = run_batch(None);
        ovl_best = ovl_best.min(o);
        ovl_total += o;
    }
    let serialized = Stats { best: ser_best, mean: ser_total / overlap_samples as u32 };
    let overlapped = Stats { best: ovl_best, mean: ovl_total / overlap_samples as u32 };
    // On a 1-core host the best-of metric is noisy (the serialized
    // configuration occasionally lands one lucky batch), while the mean over
    // all batches consistently shows the removed lock handoff; report both.
    let overlap_speedup = serialized.best.as_secs_f64() / overlapped.best.as_secs_f64();
    let overlap_speedup_mean = serialized.mean.as_secs_f64() / overlapped.mean.as_secs_f64();
    println!(
        "\noverlapped engines (2 clients, 1 lane each, shared 2-worker pool, \
         {overlap_batch} jobs per client per batch):\n  serialized {:?} vs overlapped {:?} \
         per batch ({overlap_speedup:.2}x best, {overlap_speedup_mean:.2}x mean)",
        serialized.best, overlapped.best
    );

    // Record the host core count alongside the numbers: absolute times and
    // overlap ratios are only comparable across commits measured on the
    // same hardware, and the JSON is archived as a CI artifact. Distinct
    // from `lanes`: detection failure records 1, not the lane fallback.
    let host_cores = jitspmm_bench::host_cores();
    let json = format!(
        "{{\n  \"bench\": \"dispatch_overhead\",\n  \"d\": {D},\n  \"lanes\": {threads},\n  \"host_cores\": {host_cores},\n  \"futex_wake\": {},\n  \"results\": [\n{}\n  ],\n  \"overlap\": {{\"pool_workers\": 2, \"lanes_per_job\": 1, \"jobs_per_client\": {overlap_batch}, \"serialized\": {}, \"overlapped\": {}, \"overlap_speedup_best\": {:.4}, \"overlap_speedup_mean\": {:.4}}}\n}}\n",
        WakeSlot::FUTEX_BACKED,
        json_rows.join(",\n"),
        json_stats(&serialized),
        json_stats(&overlapped),
        overlap_speedup,
        overlap_speedup_mean,
    );
    jitspmm_bench::emit_bench_json("BENCH_dispatch_overhead.json", &json);
}
