//! Criterion benchmark for experiment E8: the ISA tier used for the
//! register-resident accumulators (scalar / SSE-width / AVX2 / AVX-512),
//! d = 16.

use criterion::{criterion_group, criterion_main, Criterion};
use jitspmm::{CpuFeatures, IsaLevel, JitSpmmBuilder, Strategy};
use jitspmm_sparse::{generate, DenseMatrix};
use std::hint::black_box;

fn bench_isa_ablation(c: &mut Criterion) {
    let features = CpuFeatures::detect();
    if !(features.avx && features.has_fma()) {
        eprintln!("skipping ISA ablation: host lacks AVX/FMA");
        return;
    }
    let matrix = generate::rmat::<f32>(13, 250_000, generate::RmatConfig::GRAPH500, 9);
    let d = 16;
    let x = DenseMatrix::random(matrix.ncols(), d, 11);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut group = c.benchmark_group("isa_ablation_d16");
    group.sample_size(10);

    for isa in IsaLevel::ALL {
        if !features.supports(isa) {
            continue;
        }
        let engine = JitSpmmBuilder::new()
            .strategy(Strategy::row_split_dynamic_default())
            .isa(isa)
            .threads(threads)
            .build(&matrix, d)
            .expect("JIT compilation failed");
        let mut y = DenseMatrix::zeros(matrix.nrows(), d);
        group.bench_function(isa.name(), |b| {
            b.iter(|| engine.execute_into(black_box(&x), &mut y).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_isa_ablation);
criterion_main!(benches);
