//! Serving overload benchmark: flood an [`SpmmServer`] with 10x its
//! admission queue depth under a *shedding* policy and measure what the
//! control plane is for — admission latency (how fast a producer learns
//! accept/reject, p50/p99), shed rate, and goodput of the admitted subset.
//!
//! Run with: `cargo bench -p jitspmm-bench --bench serve_overload`
//! (add `-- --quick` for a fast pass). Emits a human-readable table on
//! stdout and machine-readable JSON to `BENCH_serve_overload.json` —
//! including the host core count, so the perf trajectory stays
//! interpretable across hardware changes.

use jitspmm::serve::{AdmissionPolicy, ServeOptions, ServerRequest, SpmmServer};
use jitspmm::{CpuFeatures, JitSpmmBuilder, WorkerPool};
use jitspmm_bench::{emit_bench_json, host_cores, TextTable};
use jitspmm_sparse::{generate, DenseMatrix};
use std::time::{Duration, Instant};

/// Offered load per run, as a multiple of the admission queue depth.
const FLOOD_FACTOR: usize = 10;

/// Nearest-rank percentile over an already-sorted sample.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let index = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[index]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let features = CpuFeatures::detect();
    if !(features.avx && features.has_fma()) {
        eprintln!("serve_overload: host lacks AVX/FMA, skipping");
        return;
    }
    let cores = host_cores();
    let workers = cores.max(2);
    let reps = if quick { 3 } else { 8 };
    let d = 16usize;
    let a = generate::uniform::<f32>(1_200, 1_200, 20_000, 9);
    let pool = WorkerPool::new(workers);
    let engine = JitSpmmBuilder::new()
        .pool(pool.clone())
        .threads(workers.min(4))
        .build(&a, d)
        .expect("JIT compilation failed");
    let server = SpmmServer::new(vec![engine]).expect("engine shares the pool");
    println!(
        "serving overload: shedding admission under a {FLOOD_FACTOR}x flood \
         ({workers} pool workers, {cores} host cores, {reps} reps per cap)\n"
    );

    let mut table = TextTable::new(&[
        "queue cap",
        "offered",
        "admitted(mean)",
        "shed rate",
        "admit p50",
        "admit p99",
        "goodput req/s",
    ]);
    let mut json_rows = Vec::new();

    for cap in [4usize, 16, 64] {
        let total = cap * FLOOD_FACTOR;
        let template: Vec<DenseMatrix<f32>> =
            (0..total).map(|i| DenseMatrix::random(1_200, d, 700 + i as u64)).collect();
        let mut latencies: Vec<Duration> = Vec::with_capacity(total * reps);
        let mut admitted_sum = 0usize;
        let mut shed_rate_sum = 0f64;
        let mut goodput_sum = 0f64;
        for _rep in 0..reps {
            // Requests are materialized before the timed run: the admission
            // numbers measure the send, not input cloning.
            let requests: Vec<ServerRequest<f32>> =
                template.iter().map(|x| ServerRequest::new(0, x.clone())).collect();
            let run_start = Instant::now();
            let (report, sends) = server
                .serve_controlled(
                    ServeOptions::new(AdmissionPolicy::shedding(cap)),
                    move |sender| {
                        let mut sends = Vec::with_capacity(requests.len());
                        for request in requests {
                            let start = Instant::now();
                            let admitted = sender.send_request(request).is_ok();
                            sends.push((start.elapsed(), admitted));
                        }
                        sends
                    },
                    drop,
                )
                .expect("serving failed");
            let elapsed = run_start.elapsed();
            assert_eq!(report.offered(), total, "offered load must add up");
            admitted_sum += report.requests;
            shed_rate_sum += report.shed_rate();
            goodput_sum += report.requests as f64 / elapsed.as_secs_f64();
            latencies.extend(sends.iter().map(|(latency, _)| *latency));
        }
        latencies.sort();
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);
        let admitted_mean = admitted_sum as f64 / reps as f64;
        let shed_rate = shed_rate_sum / reps as f64;
        let goodput = goodput_sum / reps as f64;
        table.row(vec![
            cap.to_string(),
            total.to_string(),
            format!("{admitted_mean:.1}"),
            format!("{:.0}%", shed_rate * 100.0),
            format!("{p50:?}"),
            format!("{p99:?}"),
            format!("{goodput:.0}"),
        ]);
        json_rows.push(format!(
            r#"    {{"queue_cap": {cap}, "offered": {total}, "admitted_mean": {admitted_mean:.2}, "shed_rate_mean": {shed_rate:.4}, "admission_p50_ns": {}, "admission_p99_ns": {}, "goodput_rps_mean": {goodput:.2}}}"#,
            p50.as_nanos(),
            p99.as_nanos(),
        ));
    }

    table.print();
    println!(
        "\n(admission latency is the producer-side cost of learning accept/reject under a \
         shedding policy — it must stay flat as the flood grows; goodput counts only \
         completed requests)"
    );

    // Capped blocking backpressure: once the in-flight cap is reached, every
    // further send parks on the control plane's condvar and is woken by the
    // completion that frees a slot. (The previous implementation sleep-polled
    // the cap in 1 ms ticks, so every blocked send paid up to a millisecond
    // of wake quantization on top of the wait for real work — visible as a
    // 1 ms floor in the blocked-send tail.) Blocked-send latency here is
    // wait-for-work plus wake overhead.
    let control = server.control();
    let blocking_total = 64usize;
    let blocking_template: Vec<DenseMatrix<f32>> =
        (0..blocking_total).map(|i| DenseMatrix::random(1_200, d, 900 + i as u64)).collect();
    let mut blocked_table = TextTable::new(&[
        "in-flight cap",
        "offered",
        "parked sends(mean)",
        "send p50",
        "send p99",
        "goodput req/s",
    ]);
    let mut blocked_rows = Vec::new();
    for cap in [1usize, 4, 16] {
        let mut latencies: Vec<Duration> = Vec::with_capacity(blocking_total * reps);
        let mut parked_sum = 0usize;
        let mut goodput_sum = 0f64;
        for _rep in 0..reps {
            let requests: Vec<ServerRequest<f32>> =
                blocking_template.iter().map(|x| ServerRequest::new(0, x.clone())).collect();
            let parked_before = control.cap_blocked();
            let run_start = Instant::now();
            let (report, sends) = server
                .serve_controlled(
                    ServeOptions::new(
                        AdmissionPolicy::blocking(blocking_total).with_max_in_flight(cap),
                    ),
                    move |sender| {
                        let mut sends = Vec::with_capacity(requests.len());
                        for request in requests {
                            let start = Instant::now();
                            sender.send_request(request).expect("blocking admission");
                            sends.push(start.elapsed());
                        }
                        sends
                    },
                    drop,
                )
                .expect("serving failed");
            let elapsed = run_start.elapsed();
            assert_eq!(report.requests, blocking_total, "blocking completes everything");
            parked_sum += control.cap_blocked() - parked_before;
            goodput_sum += report.requests as f64 / elapsed.as_secs_f64();
            latencies.extend(sends);
        }
        latencies.sort();
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);
        let parked_mean = parked_sum as f64 / reps as f64;
        let goodput = goodput_sum / reps as f64;
        blocked_table.row(vec![
            cap.to_string(),
            blocking_total.to_string(),
            format!("{parked_mean:.1}"),
            format!("{p50:?}"),
            format!("{p99:?}"),
            format!("{goodput:.0}"),
        ]);
        blocked_rows.push(format!(
            r#"    {{"in_flight_cap": {cap}, "offered": {blocking_total}, "parked_sends_mean": {parked_mean:.2}, "blocked_send_p50_ns": {}, "blocked_send_p99_ns": {}, "goodput_rps_mean": {goodput:.2}}}"#,
            p50.as_nanos(),
            p99.as_nanos(),
        ));
    }
    println!();
    blocked_table.print();
    println!(
        "\n(parked sends counts producer parks on the in-flight cap's condvar; blocked-send \
         latency is dominated by waiting for a slot — real work — with no 1 ms wake \
         quantization on top)"
    );

    let json = format!(
        "{{\n  \"bench\": \"serve_overload\",\n  \"flood_factor\": {FLOOD_FACTOR},\n  \"repetitions\": {reps},\n  \"pool_workers\": {workers},\n  \"host_cores\": {cores},\n  \"results\": [\n{}\n  ],\n  \"blocking_results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n"),
        blocked_rows.join(",\n"),
    );
    emit_bench_json("BENCH_serve_overload.json", &json);
}
