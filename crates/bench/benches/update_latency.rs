//! Incremental-update latency benchmark: what an edge-delta costs against a
//! compiled sharded engine, versus re-planning and recompiling the whole
//! matrix from scratch. For a sweep of touched-shard fractions (one shard,
//! half the shards, every shard) it times the sparse delta merge alone
//! ([`CsrMatrix::apply_delta`]), the full incremental
//! [`MutableSpmm::apply`] (merge + shard-local recompile + generation
//! swap), and the from-scratch baseline (re-plan + compile every shard),
//! then asserts the updated engine multiplies bit-identically to the
//! rebuilt one. The payoff claim: on small touched fractions the
//! incremental path beats the full rebuild because untouched shards adopt
//! their compiled cores instead of regenerating code.
//!
//! Run with: `cargo bench -p jitspmm-bench --bench update_latency`
//! (add `-- --quick` for a fast pass). Emits a human-readable table on
//! stdout and machine-readable JSON to `BENCH_update_latency.json`,
//! including the host core count so archived numbers stay interpretable.

use jitspmm::shard::{plan_shards, ShardedSpmm};
use jitspmm::{CpuFeatures, MutableSpmm, WorkerPool};
use jitspmm_bench::{emit_bench_json, fmt_secs, host_cores, json_stats, measure, TextTable};
use jitspmm_sparse::{generate, DeltaBatch, DenseMatrix};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let features = CpuFeatures::detect();
    if !(features.avx && features.has_fma()) {
        eprintln!("update_latency: host lacks AVX/FMA, skipping");
        return;
    }
    let cores = host_cores();
    let workers = cores.clamp(2, 4);
    let reps = if quick { 5 } else { 15 };
    let d = 16usize;
    let shards = 8usize;
    let (nnz, side) = if quick { (60_000, 2_000) } else { (240_000, 8_000) };
    let a = generate::uniform::<f32>(side, side, nnz, 5);
    let pool = WorkerPool::new(workers);
    // The initial plan's row ranges, used to aim each delta at an exact
    // number of shards (the engine under test starts from the same cut).
    let plan = plan_shards(&a, shards, 1).expect("plan");
    let ranges: Vec<std::ops::Range<usize>> =
        plan.shards().iter().map(|s| s.rows.start..s.rows.end).collect();
    drop(plan);

    println!(
        "incremental update latency: {side}x{side} nnz={nnz} d={d} {shards} shards \
         ({workers} pool workers, {cores} host cores, {reps} reps)\n"
    );
    let mut table = TextTable::new(&[
        "touched shards",
        "delta merge (best)",
        "incremental apply (best)",
        "full rebuild (best)",
        "incr/full",
    ]);
    let mut json_rows = Vec::new();

    for touched in [1usize, shards / 2, shards] {
        // A few upserts per targeted shard: enough to force that shard's
        // re-materialize + recompile, far too little to drift the balance
        // past the re-plan threshold.
        let mut delta = DeltaBatch::new();
        for range in ranges.iter().take(touched) {
            for k in 0..8usize {
                let row = range.start + (k * 37) % range.len().max(1);
                delta.upsert(row, (row * 31 + k) % side, 0.5 + k as f32 * 0.25);
            }
        }

        // The sparse merge alone — the floor any update path pays.
        let merge = measure(reps, || drop(a.apply_delta(&delta).expect("merge")));

        // The incremental path: merge touched shards, recompile them,
        // adopt the rest, swap the generation. Repeated applies are the
        // steady state of a stream of deltas (same rows stay hot).
        let engine = MutableSpmm::compile(&a, shards, 1, d, pool.clone()).expect("compile");
        let incremental = measure(reps, || {
            let report = engine.apply(&delta).expect("apply");
            assert_eq!(report.rebuilt_shards, touched, "delta must hit {touched} shards");
            assert!(!report.replanned, "sweep deltas must stay under the re-plan threshold");
        });

        // The from-scratch baseline: re-cut and recompile every shard of
        // the merged matrix — what a non-incremental engine pays per delta.
        let merged = engine.merged_matrix();
        let full = measure(reps, || {
            let plan = plan_shards(&merged, shards, 1).expect("replan");
            drop(ShardedSpmm::compile(&plan, d, pool.clone()).expect("recompile"));
        });

        // The updated engine must match the from-scratch compile bit for bit.
        let check_plan = plan_shards(&merged, shards, 1).expect("plan");
        let fresh = ShardedSpmm::compile(&check_plan, d, pool.clone()).expect("compile");
        let x = DenseMatrix::random(side, d, 7);
        let (y_inc, _) = pool.scope(|s| engine.execute(s, &x)).expect("execute");
        let (y_ref, _) = pool.scope(|s| fresh.execute(s, &x)).expect("execute");
        assert_eq!(
            y_inc.max_abs_diff(&y_ref),
            0.0,
            "incremental engine must be bit-identical to a from-scratch compile"
        );
        drop((y_inc, y_ref, fresh));

        table.row(vec![
            format!("{touched}/{shards}"),
            fmt_secs(merge.best),
            fmt_secs(incremental.best),
            fmt_secs(full.best),
            format!("{:.3}", incremental.best.as_secs_f64() / full.best.as_secs_f64().max(1e-12)),
        ]);
        json_rows.push(format!(
            r#"    {{"touched_shards": {touched}, "delta_merge": {}, "incremental_apply": {}, "full_rebuild": {}}}"#,
            json_stats(&merge),
            json_stats(&incremental),
            json_stats(&full)
        ));
    }

    table.print();
    println!(
        "\n(delta merge = CsrMatrix::apply_delta alone; incremental apply = shard-local \
         merge + recompile + generation swap; full rebuild = re-plan + compile all \
         {shards} shards of the merged matrix)"
    );

    let json = format!(
        "{{\n  \"bench\": \"update_latency\",\n  \"repetitions\": {reps},\n  \"pool_workers\": {workers},\n  \"host_cores\": {cores},\n  \"nnz\": {nnz},\n  \"d\": {d},\n  \"shards\": {shards},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n"),
    );
    emit_bench_json("BENCH_update_latency.json", &json);
}
