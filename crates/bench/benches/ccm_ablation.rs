//! Criterion benchmark for experiment E7: coarse-grain column merging on
//! versus off (the non-CCM kernel keeps a runtime column loop like an AOT
//! kernel would), across several column counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jitspmm::{CpuFeatures, JitSpmmBuilder, Strategy};
use jitspmm_sparse::{generate, DenseMatrix};
use std::hint::black_box;

fn bench_ccm_ablation(c: &mut Criterion) {
    let features = CpuFeatures::detect();
    if !(features.avx && features.has_fma()) {
        eprintln!("skipping CCM ablation: host lacks AVX/FMA");
        return;
    }
    let matrix = generate::rmat::<f32>(13, 250_000, generate::RmatConfig::WEB, 5);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut group = c.benchmark_group("ccm_ablation");
    group.sample_size(10);

    for d in [8usize, 16, 32, 45] {
        let x = DenseMatrix::random(matrix.ncols(), d, 3);
        for ccm in [true, false] {
            let engine = JitSpmmBuilder::new()
                .strategy(Strategy::row_split_dynamic_default())
                .ccm(ccm)
                .threads(threads)
                .build(&matrix, d)
                .expect("JIT compilation failed");
            let mut y = DenseMatrix::zeros(matrix.nrows(), d);
            let label = if ccm { "ccm-on" } else { "ccm-off" };
            group.bench_with_input(BenchmarkId::new(label, d), &d, |b, _| {
                b.iter(|| engine.execute_into(black_box(&x), &mut y).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ccm_ablation);
criterion_main!(benches);
