//! Criterion benchmark for experiments E4/E5 (Figures 9 and 10): the three
//! workload-division strategies under the auto-vectorized baseline, the
//! MKL-like baseline and JITSPMM, d = 16.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jitspmm::baseline::{mkl_like::spmm_mkl_like_f32, vectorized::spmm_vectorized};
use jitspmm::{CpuFeatures, JitSpmmBuilder, Strategy};
use jitspmm_sparse::{generate, CsrMatrix, DenseMatrix};
use std::hint::black_box;

fn workloads() -> Vec<(&'static str, CsrMatrix<f32>)> {
    vec![
        ("web-like", generate::rmat(13, 250_000, generate::RmatConfig::WEB, 1)),
        ("social-like", generate::rmat(13, 250_000, generate::RmatConfig::GRAPH500, 2)),
    ]
}

fn bench_strategies(c: &mut Criterion) {
    let d = 16;
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let features = CpuFeatures::detect();
    for (name, matrix) in workloads() {
        let x = DenseMatrix::random(matrix.ncols(), d, 7);
        let mut group = c.benchmark_group(format!("strategies_{name}_d{d}"));
        group.sample_size(10);

        for strategy in Strategy::paper_set() {
            let mut y = DenseMatrix::zeros(matrix.nrows(), d);
            group.bench_with_input(
                BenchmarkId::new("auto-vectorized", strategy.name()),
                &strategy,
                |b, &strategy| {
                    b.iter(|| spmm_vectorized(black_box(&matrix), &x, &mut y, strategy, threads))
                },
            );
        }

        let mut y = DenseMatrix::zeros(matrix.nrows(), d);
        group.bench_function("mkl-like", |b| {
            b.iter(|| spmm_mkl_like_f32(black_box(&matrix), &x, &mut y, threads))
        });

        if features.avx && features.has_fma() {
            for strategy in Strategy::paper_set() {
                let engine = JitSpmmBuilder::new()
                    .strategy(strategy)
                    .threads(threads)
                    .build(&matrix, d)
                    .expect("JIT compilation failed");
                let mut y = DenseMatrix::zeros(matrix.nrows(), d);
                group.bench_with_input(
                    BenchmarkId::new("jitspmm", strategy.name()),
                    &strategy,
                    |b, _| b.iter(|| engine.execute_into(black_box(&x), &mut y).unwrap()),
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
