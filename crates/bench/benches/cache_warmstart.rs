//! Persistent kernel cache warm-start benchmark: what a restart costs with
//! and without `BENCH`-able cache state on disk. For every workload-division
//! strategy it times a **cold** start (empty cache directory: full code
//! generation plus the store) against a **warm** start (populated cache:
//! mmap, checksum, relocation patch) and asserts the two engines multiply
//! bit-identically. A second section times the tiered path, where the warm
//! start also skips the tier-0 warmup and the profile-guided recompile.
//!
//! Run with: `cargo bench -p jitspmm-bench --bench cache_warmstart`
//! (add `-- --quick` for a fast pass). Emits a human-readable table on
//! stdout and machine-readable JSON to `BENCH_cache_warmstart.json`,
//! including the host core count so archived numbers stay interpretable.

use jitspmm::{
    CpuFeatures, JitSpmmBuilder, KernelCache, KernelTier, Strategy, TierPolicy, WorkerPool,
};
use jitspmm_bench::{emit_bench_json, fmt_secs, host_cores, json_stats, measure, TextTable};
use jitspmm_sparse::{generate, DenseMatrix};
use std::sync::Arc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let features = CpuFeatures::detect();
    if !(features.avx && features.has_fma()) {
        eprintln!("cache_warmstart: host lacks AVX/FMA, skipping");
        return;
    }
    let cores = host_cores();
    let workers = cores.clamp(2, 4);
    let reps = if quick { 5 } else { 20 };
    let d = 16usize;
    let (nnz, side) = if quick { (60_000, 2_000) } else { (240_000, 8_000) };
    let a = generate::uniform::<f32>(side, side, nnz, 5);
    let x = DenseMatrix::random(side, d, 3);
    let pool = WorkerPool::new(workers);

    let dir = std::env::temp_dir().join(format!("jitspmm-bench-kcache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("cache dir");
    let cache = KernelCache::open(&dir);

    println!(
        "kernel cache warm starts: {side}x{side} nnz={nnz} d={d} \
         ({workers} pool workers, {cores} host cores, {reps} reps)\n"
    );
    let mut table =
        TextTable::new(&["strategy", "cold start (best)", "warm start (best)", "warm/cold"]);
    let mut json_rows = Vec::new();

    let strategies = [
        Strategy::RowSplitStatic,
        Strategy::row_split_dynamic_default(),
        Strategy::NnzSplit,
        Strategy::MergeSplit,
    ];
    for strategy in strategies {
        let build = |c: &Arc<KernelCache>| {
            JitSpmmBuilder::new()
                .pool(pool.clone())
                .threads(workers)
                .strategy(strategy)
                .kernel_cache_in(Arc::clone(c))
                .build(&a, d)
                .expect("compilation failed")
        };
        // Cold: every repetition starts from an empty directory, so it pays
        // code generation and the store — the first-boot path.
        let cold = measure(reps, || {
            cache.clear();
            drop(build(&cache));
        });
        // One more cold build to leave the directory populated, and to pin
        // the output bits the warm engine must reproduce.
        cache.clear();
        let cold_engine = build(&cache);
        let (y_cold, _) = cold_engine.execute(&x).expect("cold execute");
        drop(cold_engine);
        let stores = cache.stats().stores;
        // Warm: repetitions reload the same entry — mmap + checksum +
        // relocation patch, no codegen.
        let warm = measure(reps, || drop(build(&cache)));
        assert_eq!(cache.stats().stores, stores, "warm starts must not re-store");
        let warm_engine = build(&cache);
        let (y_warm, _) = warm_engine.execute(&x).expect("warm execute");
        let cold_bits: Vec<u32> = y_cold.as_slice().iter().map(|v| v.to_bits()).collect();
        let warm_bits: Vec<u32> = y_warm.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(cold_bits, warm_bits, "warm start must be bit-identical ({strategy:?})");

        let name = strategy.name();
        table.row(vec![
            name.clone(),
            fmt_secs(cold.best),
            fmt_secs(warm.best),
            format!("{:.3}", warm.best.as_secs_f64() / cold.best.as_secs_f64().max(1e-12)),
        ]);
        json_rows.push(format!(
            r#"    {{"strategy": "{name}", "cold": {}, "warm": {}}}"#,
            json_stats(&cold),
            json_stats(&warm)
        ));
    }

    // Tiered: cold pays tier-0 codegen + the profile-guided recompile
    // (promote_now) + the stores; warm reads the promotion record and builds
    // the promoted kernel straight from the cache.
    let tiered_build = |c: &Arc<KernelCache>| {
        JitSpmmBuilder::new()
            .pool(pool.clone())
            .threads(workers)
            .strategy(Strategy::row_split_dynamic_default())
            .tiered(TierPolicy::new().warmup(1))
            .kernel_cache_in(Arc::clone(c))
            .build(&a, d)
            .expect("tiered compilation failed")
    };
    let tiered_cold = measure(reps, || {
        cache.clear();
        let engine = tiered_build(&cache);
        assert!(engine.promote_now(), "promotion declined");
    });
    cache.clear();
    let engine = tiered_build(&cache);
    assert!(engine.promote_now());
    drop(engine);
    let tiered_warm = measure(reps, || {
        let engine = tiered_build(&cache);
        assert_eq!(engine.tier(), KernelTier::Promoted, "warm start must skip tier-0");
    });
    table.row(vec![
        "tiered (promote vs warm)".to_string(),
        fmt_secs(tiered_cold.best),
        fmt_secs(tiered_warm.best),
        format!(
            "{:.3}",
            tiered_warm.best.as_secs_f64() / tiered_cold.best.as_secs_f64().max(1e-12)
        ),
    ]);

    table.print();
    let stats = cache.stats();
    println!(
        "\ncache over the whole run: hits={} misses={} rejects={} stores={} evictions={}",
        stats.hits, stats.misses, stats.rejects, stats.stores, stats.evictions
    );
    println!(
        "(cold = codegen + store from an empty directory; warm = mmap + checksum + \
         relocation patch; the tiered row also folds in the skipped tier-0 warmup)"
    );

    let json = format!(
        "{{\n  \"bench\": \"cache_warmstart\",\n  \"repetitions\": {reps},\n  \"pool_workers\": {workers},\n  \"host_cores\": {cores},\n  \"nnz\": {nnz},\n  \"d\": {d},\n  \"results\": [\n{}\n  ],\n  \"tiered\": {{\"cold_promote\": {}, \"warm_start\": {}}}\n}}\n",
        json_rows.join(",\n"),
        json_stats(&tiered_cold),
        json_stats(&tiered_warm),
    );
    emit_bench_json("BENCH_cache_warmstart.json", &json);
    let _ = std::fs::remove_dir_all(&dir);
}
