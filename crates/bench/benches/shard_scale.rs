//! Sharded-execution scaling benchmark: a [`ShardedSpmm`] over K
//! nnz-balanced shards of one large power-law matrix, versus the single
//! unsharded engine on the same pool — across K ∈ {1, 2, 4, 8}.
//!
//! K = 1 measures the sharding layer's pure overhead (one shard, one
//! engine, plus the stitch bookkeeping); larger K measures whether
//! overlapped lane-capped shard launches buy wall-clock time. On a
//! single-core host nothing can overlap, so sharded execution degrades to
//! sequential shard-by-shard launches and <1x is the honest expectation;
//! on multi-core the disjoint-lane overlap is what this bench tracks
//! (re-baseline when the hardware changes — the JSON records `host_cores`).
//!
//! Run with: `cargo bench -p jitspmm-bench --bench shard_scale`
//! (add `-- --quick` for a fast pass). Emits a table on stdout and
//! machine-readable JSON to `BENCH_shard_scale.json`, including each plan's
//! achieved nnz imbalance — the planner's ≤1.10 balance target on
//! power-law inputs is asserted here, so a planner regression fails the
//! bench rather than silently skewing the numbers.

use jitspmm::shard::{plan_shards, ShardedSpmm};
use jitspmm::{CpuFeatures, JitSpmmBuilder, WakeSlot, WorkerPool};
use jitspmm_bench::{
    emit_bench_json, geometric_mean, host_cores, json_stats, measure_interleaved, TextTable,
};
use jitspmm_sparse::{generate, DenseMatrix};

/// Dense columns, the paper's GNN-ish middle ground.
const D: usize = 16;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let features = CpuFeatures::detect();
    if !(features.avx && features.has_fma()) {
        eprintln!("shard_scale: host lacks AVX/FMA, skipping");
        return;
    }
    let cores = host_cores();
    // At least two workers, so shard launches can overlap the submitting
    // thread — the configuration sharding exists for.
    let workers = cores.max(2);
    let reps = if quick { 4 } else { 10 };
    let (scale, nnz) = if quick { (12, 150_000) } else { (14, 800_000) };
    let a = generate::rmat::<f32>(scale, nnz, generate::RmatConfig::GRAPH500, 9);
    let x = DenseMatrix::random(a.ncols(), D, 0xC0FFEE);
    println!(
        "sharded vs single-engine execution: {} x {} power-law matrix, {} non-zeros, d = {D} \
         ({workers} pool workers, {cores} host cores)\n",
        a.nrows(),
        a.ncols(),
        a.nnz()
    );

    let pool = WorkerPool::new(workers);
    let single = JitSpmmBuilder::new()
        .pool(pool.clone())
        .threads(workers)
        .build(&a, D)
        .expect("JIT compilation failed");
    let (reference, _) = single.execute(&x).expect("single-engine execution failed");
    let reference = reference.into_dense();

    let mut table = TextTable::new(&[
        "shards",
        "lanes/shard",
        "nnz imbalance",
        "plan bytes (borrowed/owned-equiv)",
        "single/run",
        "sharded/run",
        "speedup(mean)",
        "wake p50/p99",
    ]);
    let mut json_rows = Vec::new();
    let mut speedups = Vec::new();
    // A small pipelined batch per shard count, to sample the deferred-launch
    // wake (enqueue -> first claim) latency the futex path targets.
    let wake_inputs: Vec<DenseMatrix<f32>> = (0..if quick { 8 } else { 32 })
        .map(|i| DenseMatrix::random(a.ncols(), D, 7_000 + i as u64))
        .collect();

    for k in [1usize, 2, 4, 8] {
        let lanes = (workers / k).max(1);
        let plan = plan_shards(&a, k, lanes).expect("planning failed");
        assert!(
            plan.nnz_imbalance() <= 1.10,
            "planner imbalance {} exceeds the 1.10 target on a power-law matrix (k = {k})",
            plan.nnz_imbalance()
        );
        // Plan memory: shards are zero-copy views, so the plan holds only
        // each shard's rebased row_ptr; an owned extraction would copy every
        // shard's col_indices (u32) and values (f32) as well.
        assert!(
            plan.shards().iter().all(|s| s.matrix.shares_storage_with(&a)),
            "shard plan copied nnz arrays (k = {k})"
        );
        let plan_bytes_borrowed: usize =
            plan.shards().iter().map(|s| (s.rows.len() + 1) * std::mem::size_of::<u64>()).sum();
        let plan_bytes_owned_equiv: usize = plan_bytes_borrowed
            + plan
                .shards()
                .iter()
                .map(|s| s.nnz() * (std::mem::size_of::<u32>() + std::mem::size_of::<f32>()))
                .sum::<usize>();
        let sharded = ShardedSpmm::compile(&plan, D, pool.clone()).expect("shard compile failed");

        // Correctness first: the stitched result must equal the unsharded
        // engine's, bit for bit.
        let (y, report) = pool.scope(|scope| sharded.execute(scope, &x)).expect("sharded run");
        assert_eq!(*y, reference, "sharded result diverged at k = {k}");
        assert_eq!(report.shards, plan.len());
        drop(y);

        let (single_stats, sharded_stats) = measure_interleaved(
            reps,
            || {
                let _ = single.execute(&x).unwrap();
            },
            || {
                let _ = pool.scope(|scope| sharded.execute(scope, &x)).unwrap();
            },
        );
        let speedup_mean = single_stats.mean.as_secs_f64() / sharded_stats.mean.as_secs_f64();
        speedups.push(speedup_mean);

        // Wake latency of the pipelined (deferred-launch) path: the batch
        // report's per-input wake percentiles, merged across shards.
        let (outputs, batch_report) =
            pool.scope(|scope| sharded.execute_batch(scope, &wake_inputs)).expect("wake batch");
        drop(outputs);
        let (wake_p50, wake_p99) = (batch_report.merged.wake_p50, batch_report.merged.wake_p99);

        table.row(vec![
            plan.len().to_string(),
            lanes.to_string(),
            format!("{:.3}", plan.nnz_imbalance()),
            format!("{plan_bytes_borrowed} / {plan_bytes_owned_equiv}"),
            format!("{:?}", single_stats.mean),
            format!("{:?}", sharded_stats.mean),
            format!("{speedup_mean:.2}x"),
            format!("{wake_p50:?} / {wake_p99:?}"),
        ]);
        let strategies: Vec<String> =
            plan.shards().iter().map(|s| format!("\"{}\"", s.strategy)).collect();
        json_rows.push(format!(
            r#"    {{"shards": {}, "lanes_per_shard": {lanes}, "nnz_imbalance": {:.4}, "strategies": [{}], "plan_bytes_borrowed": {plan_bytes_borrowed}, "plan_bytes_owned_equiv": {plan_bytes_owned_equiv}, "single": {}, "sharded": {}, "speedup_mean": {speedup_mean:.4}, "wake_p50_ns": {}, "wake_p99_ns": {}}}"#,
            plan.len(),
            plan.nnz_imbalance(),
            strategies.join(", "),
            json_stats(&single_stats),
            json_stats(&sharded_stats),
            wake_p50.as_nanos(),
            wake_p99.as_nanos(),
        ));
    }

    table.print();
    let headline = geometric_mean(&speedups);
    println!(
        "\nsharded vs single engine (geometric mean over shard counts, by mean time): \
         {headline:.2}x"
    );
    println!(
        "(on a single-core host shard launches cannot overlap — they run back to back and \
         the stitch bookkeeping is pure overhead, so <1x is expected and recorded honestly; \
         on multi-core the disjoint-lane overlap across shards is what this bench tracks — \
         re-baseline when host_cores changes)"
    );

    let json = format!(
        "{{\n  \"bench\": \"shard_scale\",\n  \"d\": {D},\n  \"matrix_rows\": {},\n  \
         \"matrix_nnz\": {},\n  \"pool_workers\": {workers},\n  \"host_cores\": {cores},\n  \
         \"futex_wake\": {},\n  \
         \"results\": [\n{}\n  ],\n  \"sharded_vs_single_speedup_mean\": {headline:.4}\n}}\n",
        a.nrows(),
        a.nnz(),
        WakeSlot::FUTEX_BACKED,
        json_rows.join(",\n"),
    );
    emit_bench_json("BENCH_shard_scale.json", &json);
}
