//! Sharded-execution scaling benchmark: a [`ShardedSpmm`] over K
//! nnz-balanced shards of one large power-law matrix, versus the single
//! unsharded engine on the same pool — across K ∈ {1, 2, 4, 8}.
//!
//! K = 1 measures the sharding layer's pure overhead (one shard, one
//! engine, plus the stitch bookkeeping); larger K measures whether
//! overlapped lane-capped shard launches buy wall-clock time. On a
//! single-core host nothing can overlap, so sharded execution degrades to
//! sequential shard-by-shard launches and <1x is the honest expectation;
//! on multi-core the disjoint-lane overlap is what this bench tracks
//! (re-baseline when the hardware changes — the JSON records `host_cores`).
//!
//! Run with: `cargo bench -p jitspmm-bench --bench shard_scale`
//! (add `-- --quick` for a fast pass). Emits a table on stdout and
//! machine-readable JSON to `BENCH_shard_scale.json`, including each plan's
//! achieved nnz imbalance — the planner's ≤1.10 balance target on
//! power-law inputs is asserted here, so a planner regression fails the
//! bench rather than silently skewing the numbers.

use jitspmm::shard::{plan_shards, ShardedSpmm};
use jitspmm::{CpuFeatures, JitSpmmBuilder, WorkerPool};
use jitspmm_bench::{
    emit_bench_json, geometric_mean, host_cores, json_stats, measure_interleaved, TextTable,
};
use jitspmm_sparse::{generate, DenseMatrix};

/// Dense columns, the paper's GNN-ish middle ground.
const D: usize = 16;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let features = CpuFeatures::detect();
    if !(features.avx && features.has_fma()) {
        eprintln!("shard_scale: host lacks AVX/FMA, skipping");
        return;
    }
    let cores = host_cores();
    // At least two workers, so shard launches can overlap the submitting
    // thread — the configuration sharding exists for.
    let workers = cores.max(2);
    let reps = if quick { 4 } else { 10 };
    let (scale, nnz) = if quick { (12, 150_000) } else { (14, 800_000) };
    let a = generate::rmat::<f32>(scale, nnz, generate::RmatConfig::GRAPH500, 9);
    let x = DenseMatrix::random(a.ncols(), D, 0xC0FFEE);
    println!(
        "sharded vs single-engine execution: {} x {} power-law matrix, {} non-zeros, d = {D} \
         ({workers} pool workers, {cores} host cores)\n",
        a.nrows(),
        a.ncols(),
        a.nnz()
    );

    let pool = WorkerPool::new(workers);
    let single = JitSpmmBuilder::new()
        .pool(pool.clone())
        .threads(workers)
        .build(&a, D)
        .expect("JIT compilation failed");
    let (reference, _) = single.execute(&x).expect("single-engine execution failed");
    let reference = reference.into_dense();

    let mut table = TextTable::new(&[
        "shards",
        "lanes/shard",
        "nnz imbalance",
        "single/run",
        "sharded/run",
        "speedup(mean)",
    ]);
    let mut json_rows = Vec::new();
    let mut speedups = Vec::new();

    for k in [1usize, 2, 4, 8] {
        let lanes = (workers / k).max(1);
        let plan = plan_shards(&a, k, lanes).expect("planning failed");
        assert!(
            plan.nnz_imbalance() <= 1.10,
            "planner imbalance {} exceeds the 1.10 target on a power-law matrix (k = {k})",
            plan.nnz_imbalance()
        );
        let sharded = ShardedSpmm::compile(&plan, D, pool.clone()).expect("shard compile failed");

        // Correctness first: the stitched result must equal the unsharded
        // engine's, bit for bit.
        let (y, report) = pool.scope(|scope| sharded.execute(scope, &x)).expect("sharded run");
        assert_eq!(*y, reference, "sharded result diverged at k = {k}");
        assert_eq!(report.shards, plan.len());
        drop(y);

        let (single_stats, sharded_stats) = measure_interleaved(
            reps,
            || {
                let _ = single.execute(&x).unwrap();
            },
            || {
                let _ = pool.scope(|scope| sharded.execute(scope, &x)).unwrap();
            },
        );
        let speedup_mean = single_stats.mean.as_secs_f64() / sharded_stats.mean.as_secs_f64();
        speedups.push(speedup_mean);
        table.row(vec![
            plan.len().to_string(),
            lanes.to_string(),
            format!("{:.3}", plan.nnz_imbalance()),
            format!("{:?}", single_stats.mean),
            format!("{:?}", sharded_stats.mean),
            format!("{speedup_mean:.2}x"),
        ]);
        let strategies: Vec<String> =
            plan.shards().iter().map(|s| format!("\"{}\"", s.strategy)).collect();
        json_rows.push(format!(
            r#"    {{"shards": {}, "lanes_per_shard": {lanes}, "nnz_imbalance": {:.4}, "strategies": [{}], "single": {}, "sharded": {}, "speedup_mean": {speedup_mean:.4}}}"#,
            plan.len(),
            plan.nnz_imbalance(),
            strategies.join(", "),
            json_stats(&single_stats),
            json_stats(&sharded_stats),
        ));
    }

    table.print();
    let headline = geometric_mean(&speedups);
    println!(
        "\nsharded vs single engine (geometric mean over shard counts, by mean time): \
         {headline:.2}x"
    );
    println!(
        "(on a single-core host shard launches cannot overlap — they run back to back and \
         the stitch bookkeeping is pure overhead, so <1x is expected and recorded honestly; \
         on multi-core the disjoint-lane overlap across shards is what this bench tracks — \
         re-baseline when host_cores changes)"
    );

    let json = format!(
        "{{\n  \"bench\": \"shard_scale\",\n  \"d\": {D},\n  \"matrix_rows\": {},\n  \
         \"matrix_nnz\": {},\n  \"pool_workers\": {workers},\n  \"host_cores\": {cores},\n  \
         \"results\": [\n{}\n  ],\n  \"sharded_vs_single_speedup_mean\": {headline:.4}\n}}\n",
        a.nrows(),
        a.nnz(),
        json_rows.join(",\n"),
    );
    emit_bench_json("BENCH_shard_scale.json", &json);
}
