//! Adaptive tiering warmup benchmark: how fast a tiered engine starts
//! serving (tier-0 codegen vs a full up-front compile), what the tier-0
//! kernel costs while the engine observes, how long the profile-guided
//! promotion takes, and what the promoted kernel buys.
//!
//! Run with: `cargo bench -p jitspmm-bench --bench tier_warmup`
//! (add `-- --quick` for a fast pass). Emits a human-readable table on
//! stdout and machine-readable JSON to `BENCH_tier_warmup.json` —
//! including the host core count, so the perf trajectory stays
//! interpretable across hardware changes.

use jitspmm::{CpuFeatures, JitSpmmBuilder, KernelTier, Strategy, TierPolicy, WorkerPool};
use jitspmm_bench::{emit_bench_json, fmt_secs, host_cores, TextTable};
use jitspmm_sparse::{generate, CsrMatrix, DenseMatrix};
use std::time::{Duration, Instant};

/// Nearest-rank percentile over an already-sorted sample.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let index = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[index]
}

/// Median kernel time over `reps` executions of `engine` on `x`.
fn kernel_p50(engine: &jitspmm::JitSpmm<'_, f32>, x: &DenseMatrix<f32>, reps: usize) -> Duration {
    let mut samples: Vec<Duration> =
        (0..reps).map(|_| engine.execute(x).expect("execution failed").1.kernel).collect();
    samples.sort();
    percentile(&samples, 0.50)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let features = CpuFeatures::detect();
    if !(features.avx && features.has_fma()) {
        eprintln!("tier_warmup: host lacks AVX/FMA, skipping");
        return;
    }
    let cores = host_cores();
    let workers = cores.clamp(2, 4);
    let warmup = if quick { 8 } else { 32 };
    let reps = if quick { 16 } else { 64 };
    let d = 16usize;
    let scale = if quick { 11 } else { 13 };
    let datasets: [(&str, CsrMatrix<f32>); 2] = [
        ("uniform", generate::uniform(4_000, 4_000, 120_000, 5)),
        ("rmat", generate::rmat(scale, 16 << scale, generate::RmatConfig::GRAPH500, 5)),
    ];
    let pool = WorkerPool::new(workers);
    println!(
        "adaptive tiering warmup: tier-0 start, {warmup}-launch observation window, \
         inline promotion ({workers} pool workers, {cores} host cores, {reps} reps per p50)\n"
    );

    let mut table = TextTable::new(&[
        "matrix",
        "tier0 codegen",
        "fixed codegen",
        "tier0 kernel p50",
        "promote (recompile+swap)",
        "promoted kernel p50",
        "promoted config",
    ]);
    let mut json_rows = Vec::new();

    for (name, a) in &datasets {
        let x = DenseMatrix::random(a.ncols(), d, 3);
        // The tiered engine: asks for the dynamic row split at the host's
        // best ISA, starts on scalar static tier-0.
        let engine = JitSpmmBuilder::new()
            .pool(pool.clone())
            .threads(workers)
            .strategy(Strategy::row_split_dynamic_default())
            .tiered(TierPolicy::new().warmup(warmup))
            .build(a, d)
            .expect("tier-0 compilation failed");
        assert_eq!(engine.tier(), KernelTier::Tier0);
        let tier0_codegen = engine.meta().codegen_time;
        // What an up-front compile of the same request would have cost
        // before the first result could be served.
        let fixed = JitSpmmBuilder::new()
            .pool(pool.clone())
            .threads(workers)
            .strategy(Strategy::row_split_dynamic_default())
            .build(a, d)
            .expect("fixed compilation failed");
        let fixed_codegen = fixed.meta().codegen_time;
        // Observation window: the launches the policy wants to see, timed —
        // this is the price of starting cheap.
        let mut observed: Vec<Duration> =
            (0..warmup).map(|_| engine.execute(&x).expect("warmup failed").1.kernel).collect();
        observed.sort();
        let tier0_p50 = percentile(&observed, 0.50);
        // Time-to-promotion: the profile-guided recompile plus the
        // hot-swap, measured end to end on the calling thread.
        let promote_start = Instant::now();
        let promoted = engine.promote_now();
        let promote_time = promote_start.elapsed();
        assert!(promoted, "promotion declined unexpectedly");
        assert_eq!(engine.tier(), KernelTier::Promoted);
        let meta = engine.meta();
        let promoted_p50 = kernel_p50(&engine, &x, reps);
        let config = format!("{:?} @ {:?}", meta.strategy, meta.isa);
        table.row(vec![
            (*name).to_string(),
            fmt_secs(tier0_codegen),
            fmt_secs(fixed_codegen),
            fmt_secs(tier0_p50),
            fmt_secs(promote_time),
            fmt_secs(promoted_p50),
            config.clone(),
        ]);
        json_rows.push(format!(
            r#"    {{"matrix": "{name}", "nnz": {}, "d": {d}, "warmup_launches": {warmup}, "tier0_codegen_ns": {}, "fixed_codegen_ns": {}, "tier0_kernel_p50_ns": {}, "promote_ns": {}, "promoted_kernel_p50_ns": {}, "promoted_config": "{config}"}}"#,
            a.nnz(),
            tier0_codegen.as_nanos(),
            fixed_codegen.as_nanos(),
            tier0_p50.as_nanos(),
            promote_time.as_nanos(),
            promoted_p50.as_nanos(),
        ));
    }

    table.print();
    println!(
        "\n(tier-0 codegen is the time before a tiered engine can serve its first request; \
         the promotion cost is paid once, off the serving path when run in the background; \
         the promoted p50 is what the observation window bought)"
    );

    let json = format!(
        "{{\n  \"bench\": \"tier_warmup\",\n  \"repetitions\": {reps},\n  \"pool_workers\": {workers},\n  \"host_cores\": {cores},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n"),
    );
    emit_bench_json("BENCH_tier_warmup.json", &json);
}
