//! Batched-serving benchmark: `JitSpmm::execute_batch` versus a serial loop
//! of `execute` calls over the same inputs, across batch sizes {1, 4, 32} —
//! the steady-state traffic shape of a server streaming dense right-hand
//! sides through one compiled kernel. Also retains experiment E9, the
//! dynamic row-dispatching claim batch-size ablation (the paper fixes 128;
//! Listing 1 footnote).
//!
//! Run with: `cargo bench -p jitspmm-bench --bench batch_size`
//! (add `-- --quick` for a fast pass). Emits a human-readable table on
//! stdout and machine-readable JSON to `BENCH_batch_throughput.json` —
//! including the host core count, so the perf trajectory stays interpretable
//! across hardware changes.

use jitspmm::{CpuFeatures, JitSpmmBuilder, Strategy};
use jitspmm_bench::{
    emit_bench_json, geometric_mean, host_cores, json_stats, measure, measure_interleaved,
    TextTable,
};
use jitspmm_sparse::{generate, CsrMatrix, DenseMatrix};

const D: usize = 16;
const BATCH_SIZES: [usize; 3] = [1, 4, 32];

struct Workload {
    name: &'static str,
    matrix: CsrMatrix<f32>,
    reps: usize,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let features = CpuFeatures::detect();
    if !(features.avx && features.has_fma()) {
        eprintln!("batch_size: host lacks AVX/FMA, skipping");
        return;
    }
    let cores = host_cores();
    // At least two lanes, so a launch occupies workers while the submitter
    // pipelines the next one — the configuration batching exists for.
    let lanes = cores.max(2);
    let scale = |reps: usize| if quick { (reps / 5).max(3) } else { reps };
    println!(
        "batched serving: execute_batch vs serial execute loop \
         (d = {D}, {lanes} lanes, {cores} host cores)\n"
    );

    let workloads = vec![
        Workload {
            name: "small-10k",
            matrix: generate::uniform(1_000, 1_000, 10_000, 2),
            reps: scale(60),
        },
        Workload {
            name: "mid-100k",
            matrix: generate::rmat(12, 100_000, generate::RmatConfig::WEB, 3),
            reps: scale(15),
        },
    ];

    let mut table = TextTable::new(&[
        "matrix",
        "batch",
        "serial/batch",
        "batched/batch",
        "speedup(mean)",
        "inputs/s",
        "kernel p50",
        "kernel p99",
    ]);
    let mut json_rows = Vec::new();
    let mut speedups = Vec::new();

    for w in &workloads {
        let engine = JitSpmmBuilder::new()
            .strategy(Strategy::row_split_dynamic_default())
            .threads(lanes)
            .build(&w.matrix, D)
            .expect("JIT compilation failed");
        for batch in BATCH_SIZES {
            let inputs: Vec<DenseMatrix<f32>> = (0..batch)
                .map(|i| DenseMatrix::random(w.matrix.ncols(), D, 100 + i as u64))
                .collect();

            // Correctness first: the batched outputs must agree with the
            // reference on every input.
            let (outputs, _) = engine
                .pool()
                .scope(|scope| engine.execute_batch(scope, &inputs))
                .expect("batched launch failed");
            for (x, y) in inputs.iter().zip(&outputs) {
                assert!(
                    y.approx_eq(&w.matrix.spmm_reference(x), 1e-3),
                    "{}: batched result mismatch",
                    w.name
                );
            }
            drop(outputs);

            let mut last_report = None;
            let (serial, batched) = measure_interleaved(
                w.reps,
                || {
                    for x in &inputs {
                        let _ = engine.execute(x).unwrap();
                    }
                },
                || {
                    let (outputs, report) =
                        engine.pool().scope(|scope| engine.execute_batch(scope, &inputs)).unwrap();
                    drop(outputs);
                    last_report = Some(report);
                },
            );
            let report = last_report.expect("at least one measured batch ran");

            let speedup_mean = serial.mean.as_secs_f64() / batched.mean.as_secs_f64();
            speedups.push(speedup_mean);
            let throughput_serial = batch as f64 / serial.mean.as_secs_f64();
            let throughput_batched = batch as f64 / batched.mean.as_secs_f64();

            table.row(vec![
                w.name.to_string(),
                batch.to_string(),
                format!("{:?}", serial.mean),
                format!("{:?}", batched.mean),
                format!("{speedup_mean:.2}x"),
                format!("{throughput_batched:.0}"),
                format!("{:?}", report.kernel_p50),
                format!("{:?}", report.kernel_p99),
            ]);
            json_rows.push(format!(
                r#"    {{"matrix": "{}", "nnz": {}, "batch": {}, "depth": {}, "serial": {}, "batched": {}, "speedup_mean": {:.4}, "throughput_serial_mean": {:.2}, "throughput_batched_mean": {:.2}, "kernel_p50_ns": {}, "kernel_p99_ns": {}, "dispatch_p50_ns": {}, "dispatch_p99_ns": {}}}"#,
                w.name,
                w.matrix.nnz(),
                batch,
                report.depth,
                json_stats(&serial),
                json_stats(&batched),
                speedup_mean,
                throughput_serial,
                throughput_batched,
                report.kernel_p50.as_nanos(),
                report.kernel_p99.as_nanos(),
                report.dispatch_p50.as_nanos(),
                report.dispatch_p99.as_nanos(),
            ));
        }
    }

    table.print();
    let headline = geometric_mean(&speedups);
    println!(
        "\nbatched vs serial speedup (geometric mean over all rows, by batch mean time): \
         {headline:.2}x"
    );
    println!("(acceptance bar: batched throughput >= the serial execute loop, i.e. >= 1.0x)");

    // ---- E9: dynamic claim batch-size ablation ---------------------------
    //
    // Orthogonal to serving batches: the number of *rows* one `lock xadd`
    // claims inside the dynamic kernel. The paper fixes 128; sweeping it on
    // a skewed matrix shows the scheduling-granularity trade-off.
    let ablation_matrix: CsrMatrix<f32> =
        generate::rmat(13, 200_000, generate::RmatConfig::GRAPH500, 13);
    let x = DenseMatrix::random(ablation_matrix.ncols(), D, 17);
    let mut y = DenseMatrix::zeros(ablation_matrix.nrows(), D);
    let mut ablation_rows = Vec::new();
    println!("\ndynamic claim batch-size ablation (E9, {} nnz):", ablation_matrix.nnz());
    for claim_batch in [1usize, 16, 128, 1024] {
        let engine = JitSpmmBuilder::new()
            .strategy(Strategy::RowSplitDynamic { batch: claim_batch })
            .threads(lanes)
            .build(&ablation_matrix, D)
            .expect("JIT compilation failed");
        let stats = measure(scale(15), || {
            engine.execute_into(&x, &mut y).unwrap();
        });
        println!("  claim batch {claim_batch:>4}: best {:?}, mean {:?}", stats.best, stats.mean);
        ablation_rows.push(format!(
            r#"    {{"claim_batch": {claim_batch}, "best_ns": {}, "mean_ns": {}}}"#,
            stats.best.as_nanos(),
            stats.mean.as_nanos()
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"batch_throughput\",\n  \"d\": {D},\n  \"lanes\": {lanes},\n  \"host_cores\": {cores},\n  \"results\": [\n{}\n  ],\n  \"batched_vs_serial_speedup_mean\": {headline:.4},\n  \"claim_batch_ablation\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n"),
        ablation_rows.join(",\n"),
    );
    emit_bench_json("BENCH_batch_throughput.json", &json);
}
