//! Criterion benchmark for experiment E9: the dynamic row-dispatching batch
//! size (the paper fixes 128; Listing 1 footnote).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jitspmm::{CpuFeatures, JitSpmmBuilder, Strategy};
use jitspmm_sparse::{generate, DenseMatrix};
use std::hint::black_box;

fn bench_batch_size(c: &mut Criterion) {
    let features = CpuFeatures::detect();
    if !(features.avx && features.has_fma()) {
        eprintln!("skipping batch-size ablation: host lacks AVX/FMA");
        return;
    }
    // A skewed matrix makes the scheduling granularity matter.
    let matrix = generate::rmat::<f32>(14, 400_000, generate::RmatConfig::GRAPH500, 13);
    let d = 16;
    let x = DenseMatrix::random(matrix.ncols(), d, 17);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut group = c.benchmark_group("dynamic_batch_size_d16");
    group.sample_size(10);

    for batch in [1usize, 16, 128, 1024] {
        let engine = JitSpmmBuilder::new()
            .strategy(Strategy::RowSplitDynamic { batch })
            .threads(threads)
            .build(&matrix, d)
            .expect("JIT compilation failed");
        let mut y = DenseMatrix::zeros(matrix.nrows(), d);
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| engine.execute_into(black_box(&x), &mut y).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_size);
criterion_main!(benches);
