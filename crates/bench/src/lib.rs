//! Shared infrastructure for the benchmark harnesses that regenerate the
//! paper's tables and figures.
//!
//! Each binary in `src/bin/` reproduces one table or figure:
//!
//! | binary | artifact |
//! |---|---|
//! | `table2` | Table II — single-thread scalar AOT vs JIT profile |
//! | `table3` | Table III — dataset statistics |
//! | `table4` | Table IV — execution time and code-generation overhead |
//! | `fig9` | Figure 9 — speedup over the auto-vectorized baseline |
//! | `fig10` | Figure 10 — speedup over the MKL-like baseline |
//! | `fig11` | Figure 11 — memory loads / branches / misses / instructions |
//!
//! Pass `--quick` to any binary to restrict the run to a representative
//! subset of the datasets (one per structural family) with fewer repetitions;
//! the full runs iterate over all 14 Table III stand-ins.

use jitspmm_sparse::datasets::{self, DatasetSpec};
use jitspmm_sparse::{CsrMatrix, DenseMatrix};
use std::time::{Duration, Instant};

/// Command-line configuration shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Run the reduced dataset suite with fewer repetitions.
    pub quick: bool,
    /// Number of timed repetitions per measurement (the paper uses 10).
    pub repetitions: usize,
    /// Worker threads (0 = all hardware threads).
    pub threads: usize,
}

impl HarnessConfig {
    /// Parse the process arguments (`--quick`, `--reps N`, `--threads N`).
    pub fn from_args() -> HarnessConfig {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let repetitions = value_after(&args, "--reps").unwrap_or(if quick { 3 } else { 5 });
        let threads = value_after(&args, "--threads").unwrap_or(0);
        HarnessConfig { quick, repetitions, threads }
    }

    /// The dataset suite selected by this configuration.
    pub fn datasets(&self) -> Vec<DatasetSpec> {
        if self.quick {
            datasets::quick_suite()
        } else {
            datasets::table3()
        }
    }
}

fn value_after(args: &[String], flag: &str) -> Option<usize> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

/// Generate the matrix for `spec`, reporting how long generation took.
pub fn load_dataset(spec: &DatasetSpec) -> (CsrMatrix<f32>, Duration) {
    let start = Instant::now();
    let matrix = spec.generate::<f32>();
    (matrix, start.elapsed())
}

/// A deterministic random dense input of `d` columns for `matrix`.
pub fn dense_input(matrix: &CsrMatrix<f32>, d: usize) -> DenseMatrix<f32> {
    DenseMatrix::random(matrix.ncols(), d, 0xC0FFEE)
}

/// Time `f` over `reps` repetitions and return the fastest run, mirroring
/// the paper's practice of reporting steady-state times (they average ten
/// runs; the minimum is the standard noise-robust alternative).
pub fn time_best_of<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

/// The host's hardware-thread count as reported by the OS (1 when detection
/// fails). Recorded in every bench JSON file so archived numbers from
/// different machines stay interpretable.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Best and mean wall-clock time of one measured configuration — the record
/// the JSON-emitting benches (`dispatch_overhead`, `batch_size`) serialize.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Fastest single repetition.
    pub best: Duration,
    /// Mean over all repetitions.
    pub mean: Duration,
}

/// Time `f` over `reps` repetitions (after one untimed warm-up call, which
/// wakes cold pool workers and fills caches) and return best and mean.
pub fn measure(reps: usize, mut f: impl FnMut()) -> Stats {
    f();
    let mut best = Duration::MAX;
    let total_start = Instant::now();
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    Stats { best, mean: total_start.elapsed() / reps.max(1) as u32 }
}

/// Measure two configurations with their repetitions interleaved (A, B, A,
/// B, ...), so slow drift in background load lands on both fairly instead of
/// biasing whichever ran second. Both are warmed up once, untimed.
pub fn measure_interleaved(
    reps: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (Stats, Stats) {
    a();
    b();
    let reps = reps.max(1);
    let mut stats = [(Duration::MAX, Duration::ZERO), (Duration::MAX, Duration::ZERO)];
    for _ in 0..reps {
        for (which, f) in [(0usize, &mut a as &mut dyn FnMut()), (1, &mut b)] {
            let start = Instant::now();
            f();
            let elapsed = start.elapsed();
            stats[which].0 = stats[which].0.min(elapsed);
            stats[which].1 += elapsed;
        }
    }
    let finish = |(best, total): (Duration, Duration)| Stats { best, mean: total / reps as u32 };
    (finish(stats[0]), finish(stats[1]))
}

/// Serialize a [`Stats`] as the `{"best_ns": ..., "mean_ns": ...}` object
/// every bench JSON file uses.
pub fn json_stats(s: &Stats) -> String {
    format!(r#"{{"best_ns": {}, "mean_ns": {}}}"#, s.best.as_nanos(), s.mean.as_nanos())
}

/// Write one benchmark's JSON (which should record [`host_cores`], so
/// archived numbers stay interpretable across machines) to
/// `<workspace root>/<file_name>` and echo it to stdout. Cargo runs benches
/// with the package directory as CWD, so the path is anchored at the
/// workspace root — the perf trajectory lives in one place, and CI uploads
/// the files from there. A write failure is reported, not fatal: the
/// numbers still reach stdout.
pub fn emit_bench_json(file_name: &str, json: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(file_name);
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
    println!("{json}");
}

/// Geometric mean of a slice of ratios (the paper reports average speedups).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// A fixed-width text table printer used by every harness binary.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append one row (must have as many cells as the header).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width must match the header");
        self.rows.push(cells);
    }

    /// Render the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a number of events in scientific notation (e.g. `1.468e9`).
pub fn fmt_events(v: u64) -> String {
    format!("{:.3e}", v as f64)
}

/// Format a duration in seconds with four decimal places.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_constant_is_constant() {
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
        let gm = geometric_mean(&[1.0, 4.0]);
        assert!((gm - 2.0).abs() < 1e-12);
    }

    #[test]
    fn text_table_renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "2".into()]);
        let rendered = t.render();
        assert!(rendered.contains("a-much-longer-name"));
        assert_eq!(rendered.lines().count(), 4);
    }

    #[test]
    #[should_panic]
    fn text_table_rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn time_best_of_returns_a_measurement() {
        let d = time_best_of(3, || {
            std::hint::black_box(1 + 1);
        });
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.5000");
        assert!(fmt_events(1_468_364_884).starts_with("1.468e9"));
    }

    #[test]
    fn quick_suite_config_selects_fewer_datasets() {
        let quick = HarnessConfig { quick: true, repetitions: 1, threads: 1 };
        let full = HarnessConfig { quick: false, repetitions: 1, threads: 1 };
        assert!(quick.datasets().len() < full.datasets().len());
        assert_eq!(full.datasets().len(), 14);
    }
}
