//! `jitspmm-serve` — a TCP front end over [`jitspmm::SpmmServer`], built for
//! warm-restart validation: start it with `--cache DIR`, kill it, start it
//! again, and the second process serves bit-identical outputs from the
//! persistent kernel cache without re-running code generation.
//!
//! Engines are described by **synthetic matrix specs** so a restarted server
//! reconstructs byte-identical matrices (and therefore identical cache
//! fingerprints) from the command line alone:
//!
//! ```text
//! jitspmm-serve serve --listen 127.0.0.1:17171 \
//!     --matrix uniform:512,512,4000,1,8 --cache /tmp/kcache --tiered
//! jitspmm-serve client 127.0.0.1:17171 info
//! jitspmm-serve client 127.0.0.1:17171 mul 0 42 --out /tmp/y.bin
//! jitspmm-serve client 127.0.0.1:17171 shutdown
//! ```
//!
//! Wire protocol: length-prefixed frames (`u32` little-endian byte count,
//! then the payload) over plain `std::net::TcpStream` — no serialization
//! dependencies. Request payloads start with an op byte:
//!
//! | op | request payload               | ok response payload                |
//! |----|-------------------------------|------------------------------------|
//! | 1  | INFO                          | `0u8`, UTF-8 status text           |
//! | 2  | MUL: engine `u32`, seed `u64` | `0u8`, nrows `u32`, d `u32`, row-major little-endian `f32` output |
//! | 3  | SHUTDOWN                      | `0u8`                              |
//! | 4  | UPDATE: engine `u32`, count `u32`, then per op: kind `u8` (0 upsert, 1 delete), row `u32`, col `u32`, value `f32` | `0u8`, UTF-8 `revision=N` |
//!
//! Errors come back as `1u8` followed by UTF-8 text. A MUL names its dense
//! input by *seed*: both sides derive it as `DenseMatrix::random(ncols, d,
//! seed)`, so only 13 bytes cross the wire and a client can replay the exact
//! request against a restarted server (`--expect FILE` compares the raw
//! response bytes — bit identity, not an epsilon test). Requests are
//! admitted under a shedding policy and routed through
//! [`SpmmServer::serve_controlled`]; each connection thread parks on a
//! per-engine FIFO of reply channels, pushed under the same lock as the
//! queue send so responses (per-engine submission order) match up.
//!
//! With `--mutable` every engine is registered as a [`MutableSpmm`]
//! (sharded across `--shards`), and UPDATE frames mutate its matrix live:
//! the delta is queued through [`jitspmm::serve::ControlHandle::apply_update`]
//! and the serving loop swaps the merged generation in between launches —
//! in-flight MULs finish on the old matrix, later MULs see the new one.
//! INFO reports each engine's live tier, nonzero count and matrix revision,
//! plus the server-wide applied/failed update counters.

use jitspmm::serve::{
    AdmissionPolicy, ControlHandle, ServeOptions, ServerRequest, ServerResponse, SpmmServer,
};
use jitspmm::{JitSpmmBuilder, KernelCache, MutableSpmm, ShardOptions, TierPolicy, WorkerPool};
use jitspmm_sparse::{generate, CsrMatrix, DeltaBatch, DenseMatrix};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

const OP_INFO: u8 = 1;
const OP_MUL: u8 = 2;
const OP_SHUTDOWN: u8 = 3;
const OP_UPDATE: u8 = 4;

/// Bytes per wire-encoded delta op: kind, row, col, value.
const UPDATE_OP_BYTES: usize = 13;

/// A synthetic matrix an engine serves: `uniform:rows,cols,nnz,seed,d`.
/// Deterministic by construction, so every restart fingerprints identically.
#[derive(Debug, Clone, Copy)]
struct MatrixSpec {
    rows: usize,
    cols: usize,
    nnz: usize,
    seed: u64,
    d: usize,
}

impl MatrixSpec {
    fn parse(text: &str) -> Result<MatrixSpec, String> {
        let body = text
            .strip_prefix("uniform:")
            .ok_or_else(|| format!("unsupported matrix spec {text:?} (want uniform:...)"))?;
        let fields: Vec<&str> = body.split(',').collect();
        if fields.len() != 5 {
            return Err(format!("matrix spec {text:?} wants uniform:rows,cols,nnz,seed,d"));
        }
        let num = |i: usize| {
            fields[i].parse::<u64>().map_err(|_| format!("bad number {:?} in {text:?}", fields[i]))
        };
        Ok(MatrixSpec {
            rows: num(0)? as usize,
            cols: num(1)? as usize,
            nnz: num(2)? as usize,
            seed: num(3)?,
            d: num(4)? as usize,
        })
    }

    fn build(&self) -> CsrMatrix<f32> {
        generate::uniform::<f32>(self.rows, self.cols, self.nnz, self.seed)
    }
}

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Read one frame; `Ok(None)` on a clean EOF before the length prefix.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = stream.read(&mut len[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > 64 << 20 {
        return Err(std::io::ErrorKind::InvalidData.into());
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

fn error_frame(message: &str) -> Vec<u8> {
    let mut payload = vec![1u8];
    payload.extend_from_slice(message.as_bytes());
    payload
}

fn usage() -> String {
    "usage:\n  jitspmm-serve serve [--listen ADDR] [--matrix uniform:rows,cols,nnz,seed,d]...\n    \
     [--cache DIR] [--numa NODE] [--tiered] [--threads N] [--queue N]\n    \
     [--mutable] [--shards N]\n  \
     jitspmm-serve client ADDR info\n  \
     jitspmm-serve client ADDR mul ENGINE SEED [--out FILE] [--expect FILE]\n  \
     jitspmm-serve client ADDR update ENGINE OPS   (OPS: row:col:value or row:col:del, comma-separated)\n  \
     jitspmm-serve client ADDR shutdown"
        .to_string()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => run_server(&args[1..]),
        Some("client") => run_client(&args[1..]),
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

struct ServerConfig {
    listen: String,
    specs: Vec<MatrixSpec>,
    cache_dir: Option<String>,
    numa: Option<usize>,
    tiered: bool,
    threads: usize,
    queue: usize,
    /// Register engines as updatable [`MutableSpmm`]s (enables UPDATE).
    mutable: bool,
    /// Shard count for `--mutable` engines.
    shards: usize,
}

fn parse_server_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        listen: "127.0.0.1:17171".to_string(),
        specs: Vec::new(),
        cache_dir: None,
        numa: None,
        tiered: false,
        threads: 2,
        queue: 64,
        mutable: false,
        shards: 2,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--listen" => config.listen = value("--listen")?,
            "--matrix" => config.specs.push(MatrixSpec::parse(&value("--matrix")?)?),
            "--cache" => config.cache_dir = Some(value("--cache")?),
            "--numa" => {
                config.numa =
                    Some(value("--numa")?.parse().map_err(|_| "bad --numa node".to_string())?);
            }
            "--tiered" => config.tiered = true,
            "--threads" => {
                config.threads =
                    value("--threads")?.parse().map_err(|_| "bad --threads".to_string())?;
            }
            "--queue" => {
                config.queue = value("--queue")?.parse().map_err(|_| "bad --queue".to_string())?;
            }
            "--mutable" => config.mutable = true,
            "--shards" => {
                config.shards =
                    value("--shards")?.parse().map_err(|_| "bad --shards".to_string())?;
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if config.specs.is_empty() {
        config.specs.push(MatrixSpec::parse("uniform:512,512,4000,1,8").expect("default spec"));
    }
    Ok(config)
}

/// One MUL reply slot: pushed onto its engine's FIFO under the same lock as
/// the queue send, popped by the serving loop's consumer in per-engine
/// submission order.
type ReplySlot = mpsc::Sender<ServerResponse<f32>>;

fn run_server(args: &[String]) -> Result<(), String> {
    let config = parse_server_args(args)?;
    let cache = config.cache_dir.as_ref().map(KernelCache::open);
    let pool = WorkerPool::new(config.threads.max(1));
    let matrices: Vec<CsrMatrix<f32>> = config.specs.iter().map(MatrixSpec::build).collect();

    let server: SpmmServer<'_, f32> = SpmmServer::with_pool(pool.clone());
    for (spec, matrix) in config.specs.iter().zip(&matrices) {
        if config.mutable {
            let mut options = ShardOptions::new();
            if let Some(cache) = &cache {
                options = options.kernel_cache(Arc::clone(cache));
            }
            if config.tiered {
                options = options.tiered(TierPolicy::new().warmup(1));
            }
            options.numa_node = config.numa;
            let engine = MutableSpmm::compile_with(
                matrix,
                config.shards.max(1),
                config.threads.max(1),
                spec.d,
                pool.clone(),
                options,
            )
            .map_err(|e| format!("compile failed: {e}"))?;
            server.add_mutable(engine).map_err(|e| format!("server: {e}"))?;
        } else {
            let mut builder =
                JitSpmmBuilder::new().pool(pool.clone()).threads(config.threads.max(1));
            if let Some(cache) = &cache {
                builder = builder.kernel_cache_in(Arc::clone(cache));
            }
            if config.tiered {
                builder = builder.tiered(TierPolicy::new().warmup(1));
            }
            let engine =
                builder.build(matrix, spec.d).map_err(|e| format!("compile failed: {e}"))?;
            if config.tiered {
                // Promote before serving: a cache-enabled server persists
                // the promotion record now, so its own restart warm-starts
                // straight onto the promoted kernel (`tier=promoted` in
                // INFO, with zero in-process promotions).
                engine.promote_now();
            }
            server.add_engine_on_node(engine, config.numa).map_err(|e| format!("server: {e}"))?;
        }
    }

    let listener =
        TcpListener::bind(&config.listen).map_err(|e| format!("bind {}: {e}", config.listen))?;
    listener.set_nonblocking(true).map_err(|e| format!("set_nonblocking: {e}"))?;
    println!("jitspmm-serve listening on {}", config.listen);

    let shutdown = AtomicBool::new(false);
    let routes: Vec<Mutex<VecDeque<ReplySlot>>> =
        config.specs.iter().map(|_| Mutex::new(VecDeque::new())).collect();
    let specs = &config.specs;
    let info_cache = cache.clone();
    let shutdown = &shutdown;
    let routes = &routes;
    let server_ref = &server;
    let control = server.control();

    let mut options = ServeOptions::new(AdmissionPolicy::shedding(config.queue.max(1)));
    if config.tiered && config.mutable {
        // Mutable engines are not pre-promoted; let the serving loop's
        // tiering sweeps promote their shards between launches.
        options = options.tiering(TierPolicy::new().warmup(1));
    }
    let (report, ()) = server
        .serve_controlled(
            options,
            move |sender| {
                std::thread::scope(|conns| loop {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let sender = sender.clone();
                            let info_cache = info_cache.clone();
                            let control = control.clone();
                            conns.spawn(move || {
                                serve_connection(
                                    stream,
                                    &sender,
                                    server_ref,
                                    &control,
                                    specs,
                                    info_cache.as_deref(),
                                    routes,
                                    shutdown,
                                );
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                });
                // Conn threads have joined; dropping the last sender clone
                // (the move above) ends the request stream.
            },
            |response| {
                let slot = {
                    let mut queue = routes[response.engine()].lock().expect("route lock");
                    queue.pop_front()
                };
                if let Some(slot) = slot {
                    // A dropped receiver (client hung up mid-request) is
                    // fine; the output buffer just recycles.
                    let _ = slot.send(response);
                }
            },
        )
        .map_err(|e| format!("serve: {e}"))?;

    println!(
        "jitspmm-serve done: {} completed, {} rejected, {} failed",
        report.requests, report.rejected, report.failed
    );
    if let Some(cache) = &cache {
        let stats = cache.stats();
        println!(
            "cache: hits={} misses={} rejects={} stores={} evictions={}",
            stats.hits, stats.misses, stats.rejects, stats.stores, stats.evictions
        );
    }
    Ok(())
}

/// Handle one client connection: a sequence of request frames until EOF.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    mut stream: TcpStream,
    sender: &jitspmm::serve::RequestSender<f32>,
    server: &SpmmServer<'_, f32>,
    control: &ControlHandle,
    specs: &[MatrixSpec],
    cache: Option<&KernelCache>,
    routes: &[Mutex<VecDeque<ReplySlot>>],
    shutdown: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    while let Ok(Some(payload)) = read_frame(&mut stream) {
        let reply = match payload.first() {
            Some(&OP_INFO) => {
                // Rendered live per request: tier, nonzero count and matrix
                // revision move while the server runs (tiering sweeps,
                // UPDATE frames).
                let mut text = format!("engines: {}\n", specs.len());
                for (id, spec) in specs.iter().enumerate() {
                    let line = if let Some(mutable) = server.mutable(id) {
                        format!(
                            "engine {id}: {}x{} nnz={} d={} tier={} kind=mutable shards={} rev={}\n",
                            spec.rows,
                            spec.cols,
                            mutable.nnz(),
                            spec.d,
                            mutable.tier().label(),
                            mutable.shards(),
                            mutable.revision()
                        )
                    } else if let Some(engine) = server.single(id) {
                        format!(
                            "engine {id}: {}x{} nnz={} d={} tier={} kind=single\n",
                            spec.rows,
                            spec.cols,
                            spec.nnz,
                            spec.d,
                            engine.tier().label()
                        )
                    } else {
                        format!("engine {id}: unregistered\n")
                    };
                    text.push_str(&line);
                }
                let (applied, failed) = control.update_counts();
                text.push_str(&format!("updates: applied={applied} failed={failed}\n"));
                match cache {
                    Some(cache) => {
                        let stats = cache.stats();
                        text.push_str(&format!(
                            "cache: hits={} misses={} rejects={} stores={} evictions={}\n",
                            stats.hits, stats.misses, stats.rejects, stats.stores, stats.evictions
                        ));
                    }
                    None => text.push_str("cache: disabled\n"),
                }
                let mut frame = vec![0u8];
                frame.extend_from_slice(text.as_bytes());
                frame
            }
            Some(&OP_UPDATE) if payload.len() >= 9 => handle_update(&payload, server, control),
            Some(&OP_MUL) if payload.len() == 13 => {
                let engine = u32::from_le_bytes(payload[1..5].try_into().unwrap()) as usize;
                let seed = u64::from_le_bytes(payload[5..13].try_into().unwrap());
                match specs.get(engine) {
                    None => error_frame(&format!("unknown engine {engine}")),
                    Some(spec) => {
                        let input = DenseMatrix::<f32>::random(spec.cols, spec.d, seed);
                        let (reply, waiter) = mpsc::channel();
                        // Push the reply slot and send under one lock so the
                        // slot order matches per-engine submission order.
                        let sent = {
                            let mut queue = routes[engine].lock().expect("route lock");
                            queue.push_back(reply);
                            match sender.send_request(ServerRequest::new(engine, input)) {
                                Ok(()) => true,
                                Err(e) => {
                                    queue.pop_back();
                                    drop(queue);
                                    let _ = write_frame(
                                        &mut stream,
                                        &error_frame(&format!("not admitted: {e}")),
                                    );
                                    false
                                }
                            }
                        };
                        if !sent {
                            continue;
                        }
                        match waiter.recv() {
                            Ok(response) => mul_reply(response, spec),
                            Err(_) => error_frame("serving loop ended before the response"),
                        }
                    }
                }
            }
            Some(&OP_SHUTDOWN) => {
                shutdown.store(true, Ordering::SeqCst);
                let _ = write_frame(&mut stream, &[0u8]);
                break;
            }
            _ => error_frame("malformed request"),
        };
        if write_frame(&mut stream, &reply).is_err() {
            break;
        }
    }
}

/// Decode an UPDATE frame, queue the delta through the control plane, and
/// wait for the serving loop to swap the new generation in (or report the
/// failure). Blocking here is fine: each connection has its own thread.
fn handle_update(payload: &[u8], server: &SpmmServer<'_, f32>, control: &ControlHandle) -> Vec<u8> {
    let engine = u32::from_le_bytes(payload[1..5].try_into().unwrap()) as usize;
    let count = u32::from_le_bytes(payload[5..9].try_into().unwrap()) as usize;
    if payload.len() != 9 + count * UPDATE_OP_BYTES {
        return error_frame("malformed update frame");
    }
    let Some(mutable) = server.mutable(engine) else {
        return error_frame(&format!("engine {engine} is not updatable (serve with --mutable)"));
    };
    let mut delta = DeltaBatch::new();
    for i in 0..count {
        let at = 9 + i * UPDATE_OP_BYTES;
        let kind = payload[at];
        let row = u32::from_le_bytes(payload[at + 1..at + 5].try_into().unwrap()) as usize;
        let col = u32::from_le_bytes(payload[at + 5..at + 9].try_into().unwrap()) as usize;
        let value = f32::from_le_bytes(payload[at + 9..at + 13].try_into().unwrap());
        match kind {
            0 => {
                delta.upsert(row, col, value);
            }
            1 => {
                delta.delete(row, col);
            }
            other => return error_frame(&format!("unknown delta op kind {other}")),
        }
    }
    let target = mutable.revision() + 1;
    let (_, failed_before) = control.update_counts();
    if !control.apply_update(engine, delta) {
        return error_frame(&format!("unknown engine {engine}"));
    }
    // The serving loop applies the delta on its next control sweep; poll in
    // short waits so a rejected delta (bad indices) surfaces promptly.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if control.wait_revision(engine, target, Duration::from_millis(50)) {
            let mut frame = vec![0u8];
            frame.extend_from_slice(format!("revision={}", mutable.revision()).as_bytes());
            return frame;
        }
        let (_, failed) = control.update_counts();
        if failed > failed_before {
            return error_frame("update rejected by the engine (out-of-range indices?)");
        }
        if Instant::now() > deadline {
            return error_frame("update not applied before the timeout");
        }
    }
}

fn mul_reply(response: ServerResponse<f32>, spec: &MatrixSpec) -> Vec<u8> {
    match response {
        ServerResponse::Completed { output, .. } => {
            let mut frame = Vec::with_capacity(9 + output.as_slice().len() * 4);
            frame.push(0u8);
            frame.extend_from_slice(&(spec.rows as u32).to_le_bytes());
            frame.extend_from_slice(&(spec.d as u32).to_le_bytes());
            for value in output.as_slice() {
                frame.extend_from_slice(&value.to_le_bytes());
            }
            frame
        }
        ServerResponse::Rejected { reason, .. } => error_frame(&format!("rejected: {reason}")),
        ServerResponse::Failed { message, .. } => error_frame(&format!("failed: {message}")),
    }
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    // The CI harness starts the server in the background and connects
    // immediately; retry briefly instead of making every caller sleep.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => return Err(format!("connect {addr}: {e}")),
        }
    }
}

fn request(stream: &mut TcpStream, payload: &[u8]) -> Result<Vec<u8>, String> {
    write_frame(stream, payload).map_err(|e| format!("send: {e}"))?;
    match read_frame(stream) {
        Ok(Some(reply)) => Ok(reply),
        Ok(None) => Err("server closed the connection".to_string()),
        Err(e) => Err(format!("recv: {e}")),
    }
}

fn run_client(args: &[String]) -> Result<(), String> {
    let addr = args.first().ok_or_else(usage)?;
    let command = args.get(1).ok_or_else(usage)?;
    let mut stream = connect(addr)?;
    match command.as_str() {
        "info" => {
            let reply = request(&mut stream, &[OP_INFO])?;
            match reply.split_first() {
                Some((0, text)) => {
                    print!("{}", String::from_utf8_lossy(text));
                    Ok(())
                }
                _ => Err(format!("info failed: {}", String::from_utf8_lossy(&reply[1..]))),
            }
        }
        "mul" => {
            let engine: u32 = args
                .get(2)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| "mul wants ENGINE SEED".to_string())?;
            let seed: u64 = args
                .get(3)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| "mul wants ENGINE SEED".to_string())?;
            let mut out = None;
            let mut expect = None;
            let mut it = args[4..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--out" => out = Some(it.next().ok_or("--out needs a file")?.clone()),
                    "--expect" => expect = Some(it.next().ok_or("--expect needs a file")?.clone()),
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            let mut payload = vec![OP_MUL];
            payload.extend_from_slice(&engine.to_le_bytes());
            payload.extend_from_slice(&seed.to_le_bytes());
            let reply = request(&mut stream, &payload)?;
            let body = match reply.split_first() {
                Some((0, body)) if body.len() >= 8 => body,
                _ => {
                    return Err(format!("mul failed: {}", String::from_utf8_lossy(&reply[1..])));
                }
            };
            let nrows = u32::from_le_bytes(body[0..4].try_into().unwrap());
            let d = u32::from_le_bytes(body[4..8].try_into().unwrap());
            // Cheap order-sensitive digest so two runs are comparable from
            // the log line alone.
            let checksum =
                body.iter().fold(0u64, |h, &b| (h ^ b as u64).wrapping_mul(0x100000001B3));
            println!("mul engine={engine} seed={seed}: {nrows}x{d} checksum={checksum:016x}");
            if let Some(path) = out {
                std::fs::write(&path, body).map_err(|e| format!("write {path}: {e}"))?;
            }
            if let Some(path) = expect {
                let expected = std::fs::read(&path).map_err(|e| format!("read {path}: {e}"))?;
                if expected != body {
                    return Err(format!(
                        "output mismatch vs {path}: {} vs {} bytes",
                        body.len(),
                        expected.len()
                    ));
                }
                println!("output is bit-identical to {path}");
            }
            Ok(())
        }
        "update" => {
            let engine: u32 = args
                .get(2)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| "update wants ENGINE OPS".to_string())?;
            let ops = args.get(3).ok_or_else(|| "update wants ENGINE OPS".to_string())?;
            let mut records: Vec<(u8, u32, u32, f32)> = Vec::new();
            for op in ops.split(',') {
                let parts: Vec<&str> = op.split(':').collect();
                let [row, col, action] = parts[..] else {
                    return Err(format!("bad op {op:?} (want row:col:value or row:col:del)"));
                };
                let row: u32 = row.parse().map_err(|_| format!("bad row in {op:?}"))?;
                let col: u32 = col.parse().map_err(|_| format!("bad col in {op:?}"))?;
                if action == "del" {
                    records.push((1, row, col, 0.0));
                } else {
                    let value: f32 = action.parse().map_err(|_| format!("bad value in {op:?}"))?;
                    records.push((0, row, col, value));
                }
            }
            let mut payload = vec![OP_UPDATE];
            payload.extend_from_slice(&engine.to_le_bytes());
            payload.extend_from_slice(&(records.len() as u32).to_le_bytes());
            for (kind, row, col, value) in records {
                payload.push(kind);
                payload.extend_from_slice(&row.to_le_bytes());
                payload.extend_from_slice(&col.to_le_bytes());
                payload.extend_from_slice(&value.to_le_bytes());
            }
            let reply = request(&mut stream, &payload)?;
            match reply.split_first() {
                Some((0, text)) => {
                    println!("update engine={engine}: {}", String::from_utf8_lossy(text));
                    Ok(())
                }
                _ => Err(format!("update failed: {}", String::from_utf8_lossy(&reply[1..]))),
            }
        }
        "shutdown" => {
            let reply = request(&mut stream, &[OP_SHUTDOWN])?;
            match reply.first() {
                Some(0) => {
                    println!("server shutting down");
                    Ok(())
                }
                _ => Err("shutdown failed".to_string()),
            }
        }
        other => Err(format!("unknown client command {other:?}\n{}", usage())),
    }
}
