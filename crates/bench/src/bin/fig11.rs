//! Figure 11 — profiling analysis: memory loads (a), branches (b), branch
//! misses (c) and instructions (d) for the auto-vectorized baseline, the
//! MKL-like baseline and JITSPMM, with `d = 16`.
//!
//! The AOT baselines use the analytic event models; the JIT column uses the
//! analytic CCM model by default, or the instruction-level emulator on the
//! generated machine code when `--emulate` is passed (slower, but measures
//! the real instruction stream; the test suite verifies the two agree within
//! a factor of two).
//!
//! Run with: `cargo run -p jitspmm-bench --release --bin fig11 [--quick] [--emulate]`

use jitspmm::profile::{self, measure_jit_emulated};
use jitspmm::{CpuFeatures, JitSpmmBuilder, ProfileCounts, ScalarKind, Strategy};
use jitspmm_bench::{dense_input, fmt_events, load_dataset, HarnessConfig, TextTable};
use jitspmm_sparse::DenseMatrix;

fn main() {
    let config = HarnessConfig::from_args();
    let emulate = std::env::args().any(|a| a == "--emulate");
    let d = 16;
    let isa = CpuFeatures::detect().best_isa();
    let lanes = profile::lanes_for(isa, ScalarKind::F32);
    println!("Figure 11: profiling metrics with d = {d} (ISA tier: {isa})\n");

    type MetricGetter = fn(&ProfileCounts) -> u64;
    let metrics: [(&str, MetricGetter); 4] = [
        ("memory loads", |c| c.memory_loads),
        ("branches", |c| c.branches),
        ("branch misses", |c| c.branch_misses),
        ("instructions", |c| c.instructions),
    ];

    let mut rows = Vec::new();
    for spec in config.datasets() {
        let (matrix, _) = load_dataset(&spec);
        let vec_counts = profile::model_aot_vectorized(&matrix, d, lanes);
        let mkl_counts = profile::model_mkl_like(&matrix, d, lanes);
        let jit_counts = if emulate {
            let x = dense_input(&matrix, d);
            let engine = JitSpmmBuilder::new()
                .strategy(Strategy::RowSplitStatic)
                .isa(isa)
                .threads(1)
                .build(&matrix, d)
                .expect("JIT compilation failed");
            let mut y = DenseMatrix::zeros(matrix.nrows(), d);
            measure_jit_emulated(&engine, &x, &mut y).expect("emulation failed")
        } else {
            profile::model_jit::<f32>(&matrix, d, isa)
        };
        rows.push((spec.name, vec_counts, mkl_counts, jit_counts));
    }

    for (panel, (metric_name, get)) in metrics.iter().enumerate() {
        println!(
            "Figure 11({}): {metric_name} (lower is better){}",
            ['a', 'b', 'c', 'd'][panel],
            if emulate && panel == 0 { "  [JIT column measured by emulation]" } else { "" }
        );
        let mut table = TextTable::new(&["dataset", "auto-vectorization", "MKL-like", "JitSpMM"]);
        let mut vec_ratio = Vec::new();
        let mut mkl_ratio = Vec::new();
        for (name, vec_counts, mkl_counts, jit_counts) in &rows {
            table.row(vec![
                name.to_string(),
                fmt_events(get(vec_counts)),
                fmt_events(get(mkl_counts)),
                fmt_events(get(jit_counts)),
            ]);
            vec_ratio.push(get(vec_counts) as f64 / get(jit_counts).max(1) as f64);
            mkl_ratio.push(get(mkl_counts) as f64 / get(jit_counts).max(1) as f64);
        }
        table.print();
        println!(
            "average reduction vs auto-vectorization: {:.1}x, vs MKL-like: {:.1}x\n",
            jitspmm_bench::geometric_mean(&vec_ratio),
            jitspmm_bench::geometric_mean(&mkl_ratio),
        );
    }
    println!("(paper averages: loads 2.8x / 2.0x, branches 3.8x / 2.9x, misses 1.4x / ~1x,");
    println!(" instructions 7.9x / 2.0x fewer than auto-vectorization / MKL respectively)");
}
