//! Table III — statistics of the sparse matrix datasets.
//!
//! Prints, for each of the 14 datasets, the row and non-zero counts the
//! paper reports alongside the counts of the scaled-down synthetic stand-in
//! this reproduction generates, plus the structural statistics (degree skew)
//! that drive the workload-division experiments.
//!
//! Run with: `cargo run -p jitspmm-bench --release --bin table3 [--quick]`

use jitspmm_bench::{load_dataset, HarnessConfig, TextTable};
use jitspmm_sparse::stats::MatrixStats;

fn main() {
    let config = HarnessConfig::from_args();
    println!("Table III: sparse matrix datasets (paper values vs scaled-down stand-ins)\n");

    let mut table = TextTable::new(&[
        "name",
        "paper rows",
        "paper nnz",
        "rows",
        "nnz",
        "avg row",
        "max row",
        "gini",
        "gen (s)",
    ]);
    for spec in config.datasets() {
        let (matrix, gen_time) = load_dataset(&spec);
        let stats = MatrixStats::of(&matrix);
        table.row(vec![
            spec.name.to_string(),
            spec.paper_rows.to_string(),
            spec.paper_nnz.to_string(),
            stats.nrows.to_string(),
            stats.nnz.to_string(),
            format!("{:.1}", stats.avg_row_nnz),
            stats.max_row_nnz.to_string(),
            format!("{:.3}", stats.gini),
            format!("{:.2}", gen_time.as_secs_f64()),
        ]);
    }
    table.print();
    println!(
        "\nThe stand-ins preserve each dataset's structural family and relative size ordering;"
    );
    println!("see DESIGN.md for the substitution rationale.");
}
