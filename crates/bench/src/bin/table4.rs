//! Table IV — execution time and code-generation overhead of JITSPMM with
//! the row-split workload assignment and `d = 16`.
//!
//! Run with: `cargo run -p jitspmm-bench --release --bin table4 [--quick]`

use jitspmm::{JitSpmmBuilder, Strategy};
use jitspmm_bench::{dense_input, fmt_secs, load_dataset, time_best_of, HarnessConfig, TextTable};
use jitspmm_sparse::DenseMatrix;

fn main() {
    let config = HarnessConfig::from_args();
    let d = 16;
    println!("Table IV: execution time and codegen overhead (row-split, d = {d})\n");

    let mut table = TextTable::new(&[
        "dataset",
        "exe (s)",
        "kernel (s)",
        "dispatch (us)",
        "codegen (s)",
        "codegen overhead (%)",
        "kernel bytes",
    ]);
    for spec in config.datasets() {
        let (matrix, _) = load_dataset(&spec);
        let x = dense_input(&matrix, d);
        let engine = JitSpmmBuilder::new()
            .strategy(Strategy::row_split_dynamic_default())
            .threads(config.threads)
            .build(&matrix, d)
            .expect("JIT compilation failed");
        let mut y = DenseMatrix::zeros(matrix.nrows(), d);
        let exec = time_best_of(config.repetitions, || {
            engine.execute_into(&x, &mut y).unwrap();
        });
        // One more run to split the steady-state time into kernel work and
        // pool-dispatch overhead.
        let report = engine.execute_into(&x, &mut y).unwrap();
        let codegen = engine.meta().codegen_time;
        let overhead = engine.codegen_overhead_ratio(exec) * 100.0;
        table.row(vec![
            spec.name.to_string(),
            fmt_secs(exec),
            fmt_secs(report.kernel),
            format!("{:.1}", report.dispatch.as_secs_f64() * 1e6),
            format!("{:.6}", codegen.as_secs_f64()),
            format!("{:.4}%", overhead),
            engine.meta().code_bytes.to_string(),
        ]);
    }
    table.print();
    println!("\nThe paper reports overheads between 0.0003% and 0.022% (average 0.0074%);");
    println!("with the scaled-down inputs the execution times are smaller, so the relative");
    println!("overhead here is larger but still far below 1%.");
}
