//! Table II — single-thread scalar SpMM: AOT-compiled baselines versus the
//! scalar JIT kernel on the `uk-2005` stand-in with `d = 8`.
//!
//! The paper compares binaries produced by gcc, clang and icc against a
//! scalar JIT kernel on execution time, memory loads, branches, branch
//! misses and instructions. Here the three AOT columns are the three
//! `rustc`-compiled scalar variants (naive / iterator / unchecked); the
//! timing is measured natively and the event counts come from the analytic
//! AOT models and from running the JIT machine code under the
//! instruction-level emulator.
//!
//! Run with: `cargo run -p jitspmm-bench --release --bin table2 [--quick]`

use jitspmm::baseline::{run_scalar_baseline, Baseline};
use jitspmm::profile::{self, measure_jit_emulated};
use jitspmm::{IsaLevel, JitSpmmBuilder, ProfileCounts, Strategy};
use jitspmm_bench::{dense_input, fmt_events, fmt_secs, time_best_of, HarnessConfig, TextTable};
use jitspmm_sparse::{datasets, generate, DenseMatrix};

fn main() {
    let config = HarnessConfig::from_args();
    let d = 8;
    println!("Table II: single-thread scalar SpMM on the uk-2005 stand-in (d = {d})\n");

    let matrix = if config.quick {
        generate::rmat::<f32>(13, 120_000, generate::RmatConfig::WEB, 202)
    } else {
        datasets::uk2005_scalar_experiment::<f32>()
    };
    println!(
        "matrix: {} rows, {} non-zeros (paper: 39.5 M rows, 936 M non-zeros)\n",
        matrix.nrows(),
        matrix.nnz()
    );
    let x = dense_input(&matrix, d);

    let mut table = TextTable::new(&[
        "metric",
        "naive (gcc proxy)",
        "iterator (clang proxy)",
        "unchecked (icc proxy)",
        "JIT",
    ]);

    // --- execution time -------------------------------------------------
    let mut times = Vec::new();
    for baseline in Baseline::table2_set() {
        let mut y = DenseMatrix::zeros(matrix.nrows(), d);
        let t =
            time_best_of(config.repetitions, || run_scalar_baseline(baseline, &matrix, &x, &mut y));
        times.push(t);
    }
    let engine = JitSpmmBuilder::new()
        .strategy(Strategy::RowSplitStatic)
        .isa(IsaLevel::Scalar)
        .threads(1)
        .build(&matrix, d)
        .expect("JIT compilation failed");
    let mut y_jit = DenseMatrix::zeros(matrix.nrows(), d);
    let jit_time = time_best_of(config.repetitions, || {
        engine.execute_single_thread(&x, &mut y_jit).unwrap();
    });
    table.row(vec![
        "execution time (s)".into(),
        fmt_secs(times[0]),
        fmt_secs(times[1]),
        fmt_secs(times[2]),
        fmt_secs(jit_time),
    ]);

    // --- event counts -----------------------------------------------------
    let aot_model = profile::model_aot_scalar(&matrix, d);
    // The iterator/unchecked variants share the same loop structure; model
    // them with modest constant-factor differences in instruction count the
    // way the three compilers differ in the paper.
    let aot_variants =
        [aot_model, scale_instructions(aot_model, 0.92), scale_instructions(aot_model, 0.77)];
    let mut y_emu = DenseMatrix::zeros(matrix.nrows(), d);
    let jit_counts = measure_jit_emulated(&engine, &x, &mut y_emu).expect("emulation failed");

    type MetricGetter = fn(&ProfileCounts) -> u64;
    let rows: [(&str, MetricGetter); 4] = [
        ("memory loads", |c| c.memory_loads),
        ("branches", |c| c.branches),
        ("branch misses", |c| c.branch_misses),
        ("instructions", |c| c.instructions),
    ];
    for (name, get) in rows {
        table.row(vec![
            name.into(),
            fmt_events(get(&aot_variants[0])),
            fmt_events(get(&aot_variants[1])),
            fmt_events(get(&aot_variants[2])),
            fmt_events(get(&jit_counts)),
        ]);
    }
    table.print();

    println!();
    println!(
        "JIT speedup over AOT scalar baselines: {:.2}x / {:.2}x / {:.2}x (paper: 2.9x / 3.0x / 2.1x)",
        times[0].as_secs_f64() / jit_time.as_secs_f64(),
        times[1].as_secs_f64() / jit_time.as_secs_f64(),
        times[2].as_secs_f64() / jit_time.as_secs_f64(),
    );
    println!(
        "load reduction {:.2}x, instruction reduction {:.2}x (paper: 2.4-2.7x and 3.4-4.4x)",
        aot_model.memory_loads as f64 / jit_counts.memory_loads as f64,
        aot_model.instructions as f64 / jit_counts.instructions as f64,
    );
}

fn scale_instructions(mut counts: ProfileCounts, factor: f64) -> ProfileCounts {
    counts.instructions = (counts.instructions as f64 * factor) as u64;
    counts.branches = (counts.branches as f64 * factor) as u64;
    counts
}
