//! Figure 10 — speedups of JITSPMM over the MKL-like hand-optimized AOT
//! baseline for the three workload-division strategies, with `d = 16` (a)
//! and `d = 32` (b).
//!
//! Run with: `cargo run -p jitspmm-bench --release --bin fig10 [--quick]`

use jitspmm::baseline::mkl_like::spmm_mkl_like_f32;
use jitspmm::{JitSpmmBuilder, Strategy};
use jitspmm_bench::{
    dense_input, geometric_mean, load_dataset, time_best_of, HarnessConfig, TextTable,
};
use jitspmm_sparse::DenseMatrix;

fn main() {
    let config = HarnessConfig::from_args();
    for d in [16usize, 32] {
        run_panel(&config, d);
        println!();
    }
}

fn run_panel(config: &HarnessConfig, d: usize) {
    println!(
        "Figure 10({}): speedup of JITSPMM over the MKL-like baseline, d = {d}",
        if d == 16 { "a" } else { "b" }
    );
    let strategies = Strategy::paper_set();
    let mut table = TextTable::new(&["dataset", "row-split", "nnz-split", "merge-split"]);
    let mut per_strategy: Vec<Vec<f64>> = vec![Vec::new(); strategies.len()];

    for spec in config.datasets() {
        let (matrix, _) = load_dataset(&spec);
        let x = dense_input(&matrix, d);

        // The MKL-like baseline has a single implementation (like MKL's
        // sparse SpMM routine); it is measured once per dataset.
        let mut y_base = DenseMatrix::zeros(matrix.nrows(), d);
        let base_time = time_best_of(config.repetitions, || {
            spmm_mkl_like_f32(&matrix, &x, &mut y_base, config.threads);
        });

        let mut cells = vec![spec.name.to_string()];
        for (si, &strategy) in strategies.iter().enumerate() {
            let engine = JitSpmmBuilder::new()
                .strategy(strategy)
                .threads(config.threads)
                .build(&matrix, d)
                .expect("JIT compilation failed");
            let mut y_jit = DenseMatrix::zeros(matrix.nrows(), d);
            let jit_time = time_best_of(config.repetitions, || {
                engine.execute_into(&x, &mut y_jit).unwrap();
            });
            assert!(
                y_jit.approx_eq(&y_base, 1e-3),
                "JIT and MKL-like baseline disagree on {}",
                spec.name
            );
            let speedup = base_time.as_secs_f64() / jit_time.as_secs_f64();
            per_strategy[si].push(speedup);
            cells.push(format!("{speedup:.2}x"));
        }
        table.row(cells);
    }
    table.print();
    println!(
        "geometric-mean speedups: row-split {:.2}x, nnz-split {:.2}x, merge-split {:.2}x",
        geometric_mean(&per_strategy[0]),
        geometric_mean(&per_strategy[1]),
        geometric_mean(&per_strategy[2]),
    );
    println!(
        "(paper, d = {d}: averages {} across strategies)",
        if d == 16 { "1.4x-1.5x" } else { "1.3x-1.4x" }
    );
}
