//! Figure 9 — speedups of JITSPMM over the auto-vectorized AOT baseline for
//! the three workload-division strategies, with `d = 16` (a) and `d = 32`
//! (b).
//!
//! Run with: `cargo run -p jitspmm-bench --release --bin fig9 [--quick]`

use jitspmm::baseline::vectorized::spmm_vectorized;
use jitspmm::{JitSpmmBuilder, Strategy};
use jitspmm_bench::{
    dense_input, geometric_mean, load_dataset, time_best_of, HarnessConfig, TextTable,
};
use jitspmm_sparse::DenseMatrix;

fn main() {
    let config = HarnessConfig::from_args();
    for d in [16usize, 32] {
        run_panel(&config, d);
        println!();
    }
}

fn run_panel(config: &HarnessConfig, d: usize) {
    println!(
        "Figure 9({}): speedup of JITSPMM over auto-vectorization, d = {d}",
        if d == 16 { "a" } else { "b" }
    );
    let strategies = Strategy::paper_set();
    let mut table = TextTable::new(&["dataset", "row-split", "nnz-split", "merge-split"]);
    let mut per_strategy: Vec<Vec<f64>> = vec![Vec::new(); strategies.len()];

    for spec in config.datasets() {
        let (matrix, _) = load_dataset(&spec);
        let x = dense_input(&matrix, d);
        let mut cells = vec![spec.name.to_string()];
        for (si, &strategy) in strategies.iter().enumerate() {
            // AOT auto-vectorized baseline.
            let mut y_base = DenseMatrix::zeros(matrix.nrows(), d);
            let base_time = time_best_of(config.repetitions, || {
                spmm_vectorized(&matrix, &x, &mut y_base, strategy, config.threads);
            });
            // JIT engine.
            let engine = JitSpmmBuilder::new()
                .strategy(strategy)
                .threads(config.threads)
                .build(&matrix, d)
                .expect("JIT compilation failed");
            let mut y_jit = DenseMatrix::zeros(matrix.nrows(), d);
            let jit_time = time_best_of(config.repetitions, || {
                engine.execute_into(&x, &mut y_jit).unwrap();
            });
            assert!(
                y_jit.approx_eq(&y_base, 1e-3),
                "JIT and baseline disagree on {} ({strategy})",
                spec.name
            );
            let speedup = base_time.as_secs_f64() / jit_time.as_secs_f64();
            per_strategy[si].push(speedup);
            cells.push(format!("{speedup:.2}x"));
        }
        table.row(cells);
    }
    table.print();
    println!(
        "geometric-mean speedups: row-split {:.2}x, nnz-split {:.2}x, merge-split {:.2}x",
        geometric_mean(&per_strategy[0]),
        geometric_mean(&per_strategy[1]),
        geometric_mean(&per_strategy[2]),
    );
    println!(
        "(paper, d = {d}: averages {} across strategies)",
        if d == 16 { "3.3x-3.5x" } else { "4.1x-4.2x" }
    );
}
