//! Executable-memory management.
//!
//! Generated machine code is copied into a page-aligned anonymous mapping
//! which is then flipped from writable to executable (W^X): the buffer is
//! never writable and executable at the same time. [`WritableBuffer`] extends
//! the same discipline to file-backed code: a private (copy-on-write) mapping
//! of an on-disk kernel image stays writable only long enough to patch
//! relocation slots, then [`WritableBuffer::seal`] flips it to read+exec.

use crate::error::AsmError;
use std::ffi::c_void;
use std::os::unix::io::AsRawFd;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
    fn munmap(addr: *mut c_void, len: usize) -> i32;
    fn __errno_location() -> *mut i32;
}

const PROT_READ: i32 = 0x1;
const PROT_WRITE: i32 = 0x2;
const PROT_EXEC: i32 = 0x4;
const MAP_PRIVATE: i32 = 0x02;
const MAP_ANONYMOUS: i32 = 0x20;
const MAP_FAILED: isize = -1;

fn errno() -> i32 {
    // SAFETY: __errno_location always returns a valid thread-local pointer.
    unsafe { *__errno_location() }
}

/// A page-aligned, executable copy of finalized machine code.
///
/// The memory is unmapped on drop. The buffer is `Send`/`Sync`: the code is
/// immutable once mapped executable, so it may be invoked concurrently from
/// many threads (which is exactly what the multi-threaded SpMM executor
/// does).
///
/// # Example
///
/// ```
/// use jitspmm_asm::{Assembler, Gpr, ExecutableBuffer};
/// # fn main() -> Result<(), jitspmm_asm::AsmError> {
/// let mut asm = Assembler::new();
/// asm.mov_ri64(Gpr::Rax, 42);
/// asm.ret();
/// let buf = ExecutableBuffer::from_code(&asm.finalize()?)?;
/// let f: extern "C" fn() -> u64 = unsafe { buf.as_fn0() };
/// assert_eq!(f(), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ExecutableBuffer {
    ptr: *mut u8,
    map_len: usize,
    code_len: usize,
}

// SAFETY: the mapping is immutable (read+exec) for the lifetime of the value
// and freed only in `Drop`, so sharing references across threads is sound.
unsafe impl Send for ExecutableBuffer {}
unsafe impl Sync for ExecutableBuffer {}

impl ExecutableBuffer {
    /// Copy `code` into fresh executable memory.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::EmptyCode`] for an empty slice and
    /// [`AsmError::ExecAlloc`] if the kernel refuses the mapping or the
    /// protection change.
    pub fn from_code(code: &[u8]) -> Result<ExecutableBuffer, AsmError> {
        if code.is_empty() {
            return Err(AsmError::EmptyCode);
        }
        let page = 4096usize;
        let map_len = code.len().div_ceil(page) * page;
        // SAFETY: a fresh anonymous private mapping with no required address.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                map_len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if ptr as isize == MAP_FAILED || ptr.is_null() {
            return Err(AsmError::ExecAlloc { code: errno(), call: "mmap" });
        }
        // SAFETY: `ptr` points to at least `map_len >= code.len()` writable
        // bytes that nothing else references yet.
        unsafe {
            std::ptr::copy_nonoverlapping(code.as_ptr(), ptr as *mut u8, code.len());
        }
        // SAFETY: `ptr`/`map_len` describe the mapping created above.
        let rc = unsafe { mprotect(ptr, map_len, PROT_READ | PROT_EXEC) };
        if rc != 0 {
            let err = AsmError::ExecAlloc { code: errno(), call: "mprotect" };
            // SAFETY: unmapping the region we just mapped.
            unsafe {
                munmap(ptr, map_len);
            }
            return Err(err);
        }
        Ok(ExecutableBuffer { ptr: ptr as *mut u8, map_len, code_len: code.len() })
    }

    /// The entry point of the generated code.
    pub fn entry(&self) -> *const u8 {
        self.ptr
    }

    /// Length of the machine code in bytes (excluding page padding).
    pub fn code_len(&self) -> usize {
        self.code_len
    }

    /// A read-only view of the machine code bytes.
    pub fn code(&self) -> &[u8] {
        // SAFETY: the mapping is PROT_READ and `code_len` bytes were written.
        unsafe { std::slice::from_raw_parts(self.ptr, self.code_len) }
    }

    /// Reinterpret the entry point as a zero-argument function.
    ///
    /// # Safety
    ///
    /// The generated code must follow the System V AMD64 calling convention
    /// for the chosen signature and must terminate.
    pub unsafe fn as_fn0<R>(&self) -> extern "C" fn() -> R {
        std::mem::transmute(self.ptr)
    }

    /// Reinterpret the entry point as a one-argument function.
    ///
    /// # Safety
    ///
    /// See [`ExecutableBuffer::as_fn0`].
    pub unsafe fn as_fn1<A, R>(&self) -> extern "C" fn(A) -> R {
        std::mem::transmute(self.ptr)
    }

    /// Reinterpret the entry point as a two-argument function.
    ///
    /// # Safety
    ///
    /// See [`ExecutableBuffer::as_fn0`].
    pub unsafe fn as_fn2<A, B, R>(&self) -> extern "C" fn(A, B) -> R {
        std::mem::transmute(self.ptr)
    }

    /// Reinterpret the entry point as a three-argument function.
    ///
    /// # Safety
    ///
    /// See [`ExecutableBuffer::as_fn0`].
    pub unsafe fn as_fn3<A, B, C, R>(&self) -> extern "C" fn(A, B, C) -> R {
        std::mem::transmute(self.ptr)
    }
}

impl Drop for ExecutableBuffer {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`map_len` describe a live mapping owned by `self`.
        unsafe {
            munmap(self.ptr as *mut c_void, self.map_len);
        }
    }
}

/// A private, writable, file-backed mapping of machine code awaiting
/// relocation patches.
///
/// Created by [`WritableBuffer::map_file`] over a stored kernel image. The
/// mapping is copy-on-write (`MAP_PRIVATE`): patches land in anonymous pages
/// owned by this process and never touch the backing file. Once every
/// relocation slot is patched, [`WritableBuffer::seal`] flips the pages to
/// read+exec and hands back an [`ExecutableBuffer`], so code is — as with
/// [`ExecutableBuffer::from_code`] — never writable and executable at once.
#[derive(Debug)]
pub struct WritableBuffer {
    ptr: *mut u8,
    map_len: usize,
    code_len: usize,
}

// SAFETY: the mapping is private to this value until `seal` consumes it, and
// freed only in `Drop`, so moving it across threads is sound.
unsafe impl Send for WritableBuffer {}

impl WritableBuffer {
    /// Map `code_len` bytes of `file` starting at `offset` as private
    /// writable memory.
    ///
    /// `offset` must be page-aligned (4096) and `[offset, offset + code_len)`
    /// must lie within the file — pages past end-of-file fault with `SIGBUS`
    /// on access, so the caller validates the file length first.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::EmptyCode`] for a zero-length request,
    /// [`AsmError::PatchOutOfRange`] for a misaligned offset, and
    /// [`AsmError::ExecAlloc`] if the kernel refuses the mapping.
    pub fn map_file(
        file: &std::fs::File,
        offset: u64,
        code_len: usize,
    ) -> Result<WritableBuffer, AsmError> {
        if code_len == 0 {
            return Err(AsmError::EmptyCode);
        }
        let page = 4096usize;
        if !offset.is_multiple_of(page as u64) {
            return Err(AsmError::PatchOutOfRange { at: offset as usize, code_len });
        }
        let map_len = code_len.div_ceil(page) * page;
        // SAFETY: a fresh private file mapping with no required address; the
        // fd stays open for the duration of the call and the kernel keeps the
        // mapping alive after the fd closes.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                map_len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE,
                file.as_raw_fd(),
                offset as i64,
            )
        };
        if ptr as isize == MAP_FAILED || ptr.is_null() {
            return Err(AsmError::ExecAlloc { code: errno(), call: "mmap" });
        }
        Ok(WritableBuffer { ptr: ptr as *mut u8, map_len, code_len })
    }

    /// Overwrite the 8 bytes at `at` with `value` (little-endian) — the
    /// immediate slot of a `mov r64, imm64`.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::PatchOutOfRange`] if `at + 8` exceeds the code.
    pub fn patch_u64(&mut self, at: usize, value: u64) -> Result<(), AsmError> {
        if at.checked_add(8).is_none_or(|end| end > self.code_len) {
            return Err(AsmError::PatchOutOfRange { at, code_len: self.code_len });
        }
        // SAFETY: bounds-checked above; the mapping is PROT_WRITE and private.
        unsafe {
            std::ptr::copy_nonoverlapping(value.to_le_bytes().as_ptr(), self.ptr.add(at), 8);
        }
        Ok(())
    }

    /// A read-only view of the (possibly patched) code bytes.
    pub fn code(&self) -> &[u8] {
        // SAFETY: the mapping is PROT_READ|PROT_WRITE and `code_len` long.
        unsafe { std::slice::from_raw_parts(self.ptr, self.code_len) }
    }

    /// Flip the pages to read+exec and return the finished
    /// [`ExecutableBuffer`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::ExecAlloc`] if the protection change fails (the
    /// mapping is released either way).
    pub fn seal(self) -> Result<ExecutableBuffer, AsmError> {
        let this = std::mem::ManuallyDrop::new(self);
        // SAFETY: `ptr`/`map_len` describe the live mapping owned by `this`.
        let rc = unsafe { mprotect(this.ptr as *mut c_void, this.map_len, PROT_READ | PROT_EXEC) };
        if rc != 0 {
            let err = AsmError::ExecAlloc { code: errno(), call: "mprotect" };
            // SAFETY: unmapping the region owned by `this`, which is never
            // dropped (ManuallyDrop), so this is the only unmap.
            unsafe {
                munmap(this.ptr as *mut c_void, this.map_len);
            }
            return Err(err);
        }
        Ok(ExecutableBuffer { ptr: this.ptr, map_len: this.map_len, code_len: this.code_len })
    }
}

impl Drop for WritableBuffer {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`map_len` describe a live mapping owned by `self`.
        unsafe {
            munmap(self.ptr as *mut c_void, self.map_len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assembler, Gpr};

    #[test]
    fn empty_code_is_rejected() {
        assert_eq!(ExecutableBuffer::from_code(&[]).unwrap_err(), AsmError::EmptyCode);
    }

    #[test]
    fn constant_function_executes() {
        let mut asm = Assembler::new();
        asm.mov_ri64(Gpr::Rax, 0x1234_5678_9ABC_DEF0u64 as i64);
        asm.ret();
        let buf = ExecutableBuffer::from_code(&asm.finalize().unwrap()).unwrap();
        let f: extern "C" fn() -> u64 = unsafe { buf.as_fn0() };
        assert_eq!(f(), 0x1234_5678_9ABC_DEF0);
    }

    #[test]
    fn identity_and_add_execute() {
        let mut asm = Assembler::new();
        asm.mov_rr64(Gpr::Rax, Gpr::Rdi);
        asm.add_rr64(Gpr::Rax, Gpr::Rsi);
        asm.ret();
        let buf = ExecutableBuffer::from_code(&asm.finalize().unwrap()).unwrap();
        let f: extern "C" fn(u64, u64) -> u64 = unsafe { buf.as_fn2() };
        assert_eq!(f(40, 2), 42);
        assert_eq!(f(u64::MAX, 1), 0);
    }

    #[test]
    fn code_is_retained_verbatim() {
        let mut asm = Assembler::new();
        asm.nop();
        asm.ret();
        let code = asm.finalize().unwrap();
        let buf = ExecutableBuffer::from_code(&code).unwrap();
        assert_eq!(buf.code(), &code[..]);
        assert_eq!(buf.code_len(), 2);
    }

    /// Write `header_pad` zero bytes then `code` to a fresh temp file and
    /// return it reopened read-only.
    fn code_file(header_pad: usize, code: &[u8]) -> std::fs::File {
        use std::io::Write;
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path = std::env::temp_dir()
            .join(format!("jitspmm-asm-exec-test-{}-{seq}.bin", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(&vec![0u8; header_pad]).unwrap();
        f.write_all(code).unwrap();
        drop(f);
        let f = std::fs::File::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        f
    }

    #[test]
    fn file_mapped_code_patches_and_executes() {
        // mov rax, imm64 (slot zeroed); ret — patch the slot, seal, run.
        let mut asm = Assembler::new();
        asm.mov_ri64(Gpr::Rax, 0);
        asm.ret();
        let code = asm.finalize().unwrap();
        let slot = code.len() - 8 - 1; // imm64 sits before the 1-byte ret
        let file = code_file(4096, &code);
        let mut buf = WritableBuffer::map_file(&file, 4096, code.len()).unwrap();
        assert_eq!(buf.code(), &code[..]);
        buf.patch_u64(slot, 0xFEED_FACE_CAFE_BEEF).unwrap();
        let exec = buf.seal().unwrap();
        let f: extern "C" fn() -> u64 = unsafe { exec.as_fn0() };
        assert_eq!(f(), 0xFEED_FACE_CAFE_BEEF);
    }

    #[test]
    fn file_mapping_is_copy_on_write() {
        let mut asm = Assembler::new();
        asm.mov_ri64(Gpr::Rax, 0);
        asm.ret();
        let code = asm.finalize().unwrap();
        let file = code_file(0, &code);
        let mut a = WritableBuffer::map_file(&file, 0, code.len()).unwrap();
        let b = WritableBuffer::map_file(&file, 0, code.len()).unwrap();
        a.patch_u64(code.len() - 9, 7).unwrap();
        // The sibling mapping of the same file bytes must not see the patch.
        assert_eq!(b.code(), &code[..]);
    }

    #[test]
    fn writable_buffer_rejects_bad_requests() {
        let file = code_file(0, &[0xC3]);
        assert_eq!(WritableBuffer::map_file(&file, 0, 0).unwrap_err(), AsmError::EmptyCode);
        assert_eq!(
            WritableBuffer::map_file(&file, 17, 1).unwrap_err(),
            AsmError::PatchOutOfRange { at: 17, code_len: 1 }
        );
        let mut buf = WritableBuffer::map_file(&file, 0, 1).unwrap();
        assert_eq!(
            buf.patch_u64(0, 1).unwrap_err(),
            AsmError::PatchOutOfRange { at: 0, code_len: 1 }
        );
        assert_eq!(
            buf.patch_u64(usize::MAX - 3, 1).unwrap_err(),
            AsmError::PatchOutOfRange { at: usize::MAX - 3, code_len: 1 }
        );
    }

    #[test]
    fn many_buffers_can_coexist() {
        let buffers: Vec<ExecutableBuffer> = (0..64u64)
            .map(|i| {
                let mut asm = Assembler::new();
                asm.mov_ri64(Gpr::Rax, i as i64);
                asm.ret();
                ExecutableBuffer::from_code(&asm.finalize().unwrap()).unwrap()
            })
            .collect();
        for (i, buf) in buffers.iter().enumerate() {
            let f: extern "C" fn() -> u64 = unsafe { buf.as_fn0() };
            assert_eq!(f(), i as u64);
        }
    }
}
