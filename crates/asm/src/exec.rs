//! Executable-memory management.
//!
//! Generated machine code is copied into a page-aligned anonymous mapping
//! which is then flipped from writable to executable (W^X): the buffer is
//! never writable and executable at the same time.

use crate::error::AsmError;
use std::ffi::c_void;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
    fn munmap(addr: *mut c_void, len: usize) -> i32;
    fn __errno_location() -> *mut i32;
}

const PROT_READ: i32 = 0x1;
const PROT_WRITE: i32 = 0x2;
const PROT_EXEC: i32 = 0x4;
const MAP_PRIVATE: i32 = 0x02;
const MAP_ANONYMOUS: i32 = 0x20;
const MAP_FAILED: isize = -1;

fn errno() -> i32 {
    // SAFETY: __errno_location always returns a valid thread-local pointer.
    unsafe { *__errno_location() }
}

/// A page-aligned, executable copy of finalized machine code.
///
/// The memory is unmapped on drop. The buffer is `Send`/`Sync`: the code is
/// immutable once mapped executable, so it may be invoked concurrently from
/// many threads (which is exactly what the multi-threaded SpMM executor
/// does).
///
/// # Example
///
/// ```
/// use jitspmm_asm::{Assembler, Gpr, ExecutableBuffer};
/// # fn main() -> Result<(), jitspmm_asm::AsmError> {
/// let mut asm = Assembler::new();
/// asm.mov_ri64(Gpr::Rax, 42);
/// asm.ret();
/// let buf = ExecutableBuffer::from_code(&asm.finalize()?)?;
/// let f: extern "C" fn() -> u64 = unsafe { buf.as_fn0() };
/// assert_eq!(f(), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ExecutableBuffer {
    ptr: *mut u8,
    map_len: usize,
    code_len: usize,
}

// SAFETY: the mapping is immutable (read+exec) for the lifetime of the value
// and freed only in `Drop`, so sharing references across threads is sound.
unsafe impl Send for ExecutableBuffer {}
unsafe impl Sync for ExecutableBuffer {}

impl ExecutableBuffer {
    /// Copy `code` into fresh executable memory.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::EmptyCode`] for an empty slice and
    /// [`AsmError::ExecAlloc`] if the kernel refuses the mapping or the
    /// protection change.
    pub fn from_code(code: &[u8]) -> Result<ExecutableBuffer, AsmError> {
        if code.is_empty() {
            return Err(AsmError::EmptyCode);
        }
        let page = 4096usize;
        let map_len = code.len().div_ceil(page) * page;
        // SAFETY: a fresh anonymous private mapping with no required address.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                map_len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if ptr as isize == MAP_FAILED || ptr.is_null() {
            return Err(AsmError::ExecAlloc { code: errno(), call: "mmap" });
        }
        // SAFETY: `ptr` points to at least `map_len >= code.len()` writable
        // bytes that nothing else references yet.
        unsafe {
            std::ptr::copy_nonoverlapping(code.as_ptr(), ptr as *mut u8, code.len());
        }
        // SAFETY: `ptr`/`map_len` describe the mapping created above.
        let rc = unsafe { mprotect(ptr, map_len, PROT_READ | PROT_EXEC) };
        if rc != 0 {
            let err = AsmError::ExecAlloc { code: errno(), call: "mprotect" };
            // SAFETY: unmapping the region we just mapped.
            unsafe {
                munmap(ptr, map_len);
            }
            return Err(err);
        }
        Ok(ExecutableBuffer { ptr: ptr as *mut u8, map_len, code_len: code.len() })
    }

    /// The entry point of the generated code.
    pub fn entry(&self) -> *const u8 {
        self.ptr
    }

    /// Length of the machine code in bytes (excluding page padding).
    pub fn code_len(&self) -> usize {
        self.code_len
    }

    /// A read-only view of the machine code bytes.
    pub fn code(&self) -> &[u8] {
        // SAFETY: the mapping is PROT_READ and `code_len` bytes were written.
        unsafe { std::slice::from_raw_parts(self.ptr, self.code_len) }
    }

    /// Reinterpret the entry point as a zero-argument function.
    ///
    /// # Safety
    ///
    /// The generated code must follow the System V AMD64 calling convention
    /// for the chosen signature and must terminate.
    pub unsafe fn as_fn0<R>(&self) -> extern "C" fn() -> R {
        std::mem::transmute(self.ptr)
    }

    /// Reinterpret the entry point as a one-argument function.
    ///
    /// # Safety
    ///
    /// See [`ExecutableBuffer::as_fn0`].
    pub unsafe fn as_fn1<A, R>(&self) -> extern "C" fn(A) -> R {
        std::mem::transmute(self.ptr)
    }

    /// Reinterpret the entry point as a two-argument function.
    ///
    /// # Safety
    ///
    /// See [`ExecutableBuffer::as_fn0`].
    pub unsafe fn as_fn2<A, B, R>(&self) -> extern "C" fn(A, B) -> R {
        std::mem::transmute(self.ptr)
    }

    /// Reinterpret the entry point as a three-argument function.
    ///
    /// # Safety
    ///
    /// See [`ExecutableBuffer::as_fn0`].
    pub unsafe fn as_fn3<A, B, C, R>(&self) -> extern "C" fn(A, B, C) -> R {
        std::mem::transmute(self.ptr)
    }
}

impl Drop for ExecutableBuffer {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`map_len` describe a live mapping owned by `self`.
        unsafe {
            munmap(self.ptr as *mut c_void, self.map_len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assembler, Gpr};

    #[test]
    fn empty_code_is_rejected() {
        assert_eq!(ExecutableBuffer::from_code(&[]).unwrap_err(), AsmError::EmptyCode);
    }

    #[test]
    fn constant_function_executes() {
        let mut asm = Assembler::new();
        asm.mov_ri64(Gpr::Rax, 0x1234_5678_9ABC_DEF0u64 as i64);
        asm.ret();
        let buf = ExecutableBuffer::from_code(&asm.finalize().unwrap()).unwrap();
        let f: extern "C" fn() -> u64 = unsafe { buf.as_fn0() };
        assert_eq!(f(), 0x1234_5678_9ABC_DEF0);
    }

    #[test]
    fn identity_and_add_execute() {
        let mut asm = Assembler::new();
        asm.mov_rr64(Gpr::Rax, Gpr::Rdi);
        asm.add_rr64(Gpr::Rax, Gpr::Rsi);
        asm.ret();
        let buf = ExecutableBuffer::from_code(&asm.finalize().unwrap()).unwrap();
        let f: extern "C" fn(u64, u64) -> u64 = unsafe { buf.as_fn2() };
        assert_eq!(f(40, 2), 42);
        assert_eq!(f(u64::MAX, 1), 0);
    }

    #[test]
    fn code_is_retained_verbatim() {
        let mut asm = Assembler::new();
        asm.nop();
        asm.ret();
        let code = asm.finalize().unwrap();
        let buf = ExecutableBuffer::from_code(&code).unwrap();
        assert_eq!(buf.code(), &code[..]);
        assert_eq!(buf.code_len(), 2);
    }

    #[test]
    fn many_buffers_can_coexist() {
        let buffers: Vec<ExecutableBuffer> = (0..64u64)
            .map(|i| {
                let mut asm = Assembler::new();
                asm.mov_ri64(Gpr::Rax, i as i64);
                asm.ret();
                ExecutableBuffer::from_code(&asm.finalize().unwrap()).unwrap()
            })
            .collect();
        for (i, buf) in buffers.iter().enumerate() {
            let f: extern "C" fn() -> u64 = unsafe { buf.as_fn0() };
            assert_eq!(f(), i as u64);
        }
    }
}
