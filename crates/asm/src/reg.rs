//! Register definitions for the x86-64 general-purpose and SIMD register
//! files.

use std::fmt;

/// A 64-bit general-purpose register.
///
/// The discriminant is the hardware encoding (0–15) used in ModRM/SIB/REX
/// bytes.
///
/// # Example
///
/// ```
/// use jitspmm_asm::Gpr;
/// assert_eq!(Gpr::Rax.id(), 0);
/// assert_eq!(Gpr::R15.id(), 15);
/// assert!(Gpr::R8.is_extended());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Gpr {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Gpr {
    /// All sixteen general-purpose registers in encoding order.
    pub const ALL: [Gpr; 16] = [
        Gpr::Rax,
        Gpr::Rcx,
        Gpr::Rdx,
        Gpr::Rbx,
        Gpr::Rsp,
        Gpr::Rbp,
        Gpr::Rsi,
        Gpr::Rdi,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
        Gpr::R12,
        Gpr::R13,
        Gpr::R14,
        Gpr::R15,
    ];

    /// Registers that are caller-saved (volatile) in the System V AMD64 ABI.
    pub const CALLER_SAVED: [Gpr; 9] =
        [Gpr::Rax, Gpr::Rcx, Gpr::Rdx, Gpr::Rsi, Gpr::Rdi, Gpr::R8, Gpr::R9, Gpr::R10, Gpr::R11];

    /// Registers that must be preserved across calls in the System V AMD64
    /// ABI.
    pub const CALLEE_SAVED: [Gpr; 6] = [Gpr::Rbx, Gpr::Rsp, Gpr::Rbp, Gpr::R12, Gpr::R13, Gpr::R14];

    /// The integer argument registers of the System V AMD64 ABI, in order.
    pub const ARGS: [Gpr; 6] = [Gpr::Rdi, Gpr::Rsi, Gpr::Rdx, Gpr::Rcx, Gpr::R8, Gpr::R9];

    /// Hardware encoding (0–15).
    #[inline]
    pub const fn id(self) -> u8 {
        self as u8
    }

    /// Low three bits of the encoding, as placed in ModRM/SIB fields.
    #[inline]
    pub const fn low3(self) -> u8 {
        self.id() & 0b111
    }

    /// Whether the register needs a REX extension bit (r8–r15).
    #[inline]
    pub const fn is_extended(self) -> bool {
        self.id() >= 8
    }

    /// Construct from a hardware encoding.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 16`.
    pub fn from_id(id: u8) -> Gpr {
        Self::ALL[id as usize]
    }

    /// The conventional assembly name of the register (64-bit form).
    pub const fn name(self) -> &'static str {
        match self {
            Gpr::Rax => "rax",
            Gpr::Rcx => "rcx",
            Gpr::Rdx => "rdx",
            Gpr::Rbx => "rbx",
            Gpr::Rsp => "rsp",
            Gpr::Rbp => "rbp",
            Gpr::Rsi => "rsi",
            Gpr::Rdi => "rdi",
            Gpr::R8 => "r8",
            Gpr::R9 => "r9",
            Gpr::R10 => "r10",
            Gpr::R11 => "r11",
            Gpr::R12 => "r12",
            Gpr::R13 => "r13",
            Gpr::R14 => "r14",
            Gpr::R15 => "r15",
        }
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

macro_rules! vec_reg {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $max:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u8);

        impl $name {
            /// Construct register number `id`.
            ///
            /// # Panics
            ///
            /// Panics if `id` is outside the architectural register file
            /// (0–15 for VEX-only registers, 0–31 with AVX-512).
            pub fn new(id: u8) -> Self {
                assert!(id < $max, concat!(stringify!($name), " register id out of range"));
                Self(id)
            }

            /// Hardware encoding.
            #[inline]
            pub const fn id(self) -> u8 {
                self.0
            }

            /// Low three bits of the encoding, as placed in ModRM/SIB fields.
            #[inline]
            pub const fn low3(self) -> u8 {
                self.0 & 0b111
            }

            /// The conventional assembly name, e.g. `zmm31`.
            pub fn name(self) -> String {
                format!("{}{}", $prefix, self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

vec_reg!(
    /// A 128-bit SSE/AVX register (`xmm0`–`xmm31`).
    ///
    /// Registers 16–31 are only encodable with EVEX (AVX-512VL).
    Xmm, "xmm", 32);
vec_reg!(
    /// A 256-bit AVX register (`ymm0`–`ymm31`).
    ///
    /// Registers 16–31 are only encodable with EVEX (AVX-512VL).
    Ymm, "ymm", 32);
vec_reg!(
    /// A 512-bit AVX-512 register (`zmm0`–`zmm31`).
    Zmm, "zmm", 32);

/// The width of a SIMD register operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VecWidth {
    /// 128-bit (`xmm`).
    X128,
    /// 256-bit (`ymm`).
    Y256,
    /// 512-bit (`zmm`).
    Z512,
}

impl VecWidth {
    /// Width in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            VecWidth::X128 => 16,
            VecWidth::Y256 => 32,
            VecWidth::Z512 => 64,
        }
    }

    /// Number of 32-bit lanes.
    pub const fn f32_lanes(self) -> usize {
        self.bytes() / 4
    }

    /// Number of 64-bit lanes.
    pub const fn f64_lanes(self) -> usize {
        self.bytes() / 8
    }
}

/// A SIMD register of any width, used by width-generic emission helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VecReg {
    id: u8,
    width: VecWidth,
}

impl VecReg {
    /// A 128-bit view of register `id`.
    pub fn xmm(id: u8) -> VecReg {
        let _ = Xmm::new(id);
        VecReg { id, width: VecWidth::X128 }
    }

    /// A 256-bit view of register `id`.
    pub fn ymm(id: u8) -> VecReg {
        let _ = Ymm::new(id);
        VecReg { id, width: VecWidth::Y256 }
    }

    /// A 512-bit view of register `id`.
    pub fn zmm(id: u8) -> VecReg {
        let _ = Zmm::new(id);
        VecReg { id, width: VecWidth::Z512 }
    }

    /// Construct with an explicit width.
    pub fn with_width(id: u8, width: VecWidth) -> VecReg {
        match width {
            VecWidth::X128 => VecReg::xmm(id),
            VecWidth::Y256 => VecReg::ymm(id),
            VecWidth::Z512 => VecReg::zmm(id),
        }
    }

    /// Hardware encoding.
    #[inline]
    pub const fn id(self) -> u8 {
        self.id
    }

    /// Register width.
    #[inline]
    pub const fn width(self) -> VecWidth {
        self.width
    }

    /// Whether the register id requires EVEX encoding (16–31) regardless of
    /// instruction choice.
    #[inline]
    pub const fn requires_evex(self) -> bool {
        self.id >= 16
    }

    /// The conventional assembly name, e.g. `ymm7`.
    pub fn name(self) -> String {
        let prefix = match self.width {
            VecWidth::X128 => "xmm",
            VecWidth::Y256 => "ymm",
            VecWidth::Z512 => "zmm",
        };
        format!("{}{}", prefix, self.id)
    }
}

impl fmt::Display for VecReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl From<Xmm> for VecReg {
    fn from(r: Xmm) -> VecReg {
        VecReg::xmm(r.id())
    }
}

impl From<Ymm> for VecReg {
    fn from(r: Ymm) -> VecReg {
        VecReg::ymm(r.id())
    }
}

impl From<Zmm> for VecReg {
    fn from(r: Zmm) -> VecReg {
        VecReg::zmm(r.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_ids_round_trip() {
        for (i, r) in Gpr::ALL.iter().enumerate() {
            assert_eq!(r.id() as usize, i);
            assert_eq!(Gpr::from_id(i as u8), *r);
        }
    }

    #[test]
    fn gpr_extended_flags() {
        assert!(!Gpr::Rdi.is_extended());
        assert!(Gpr::R8.is_extended());
        assert_eq!(Gpr::R9.low3(), 1);
    }

    #[test]
    fn vec_reg_names() {
        assert_eq!(VecReg::zmm(31).name(), "zmm31");
        assert_eq!(VecReg::ymm(2).name(), "ymm2");
        assert_eq!(VecReg::xmm(0).name(), "xmm0");
        assert_eq!(Zmm::new(7).to_string(), "zmm7");
    }

    #[test]
    #[should_panic]
    fn vec_reg_out_of_range_panics() {
        let _ = Zmm::new(32);
    }

    #[test]
    fn vec_width_lanes() {
        assert_eq!(VecWidth::Z512.f32_lanes(), 16);
        assert_eq!(VecWidth::Y256.f32_lanes(), 8);
        assert_eq!(VecWidth::X128.f32_lanes(), 4);
        assert_eq!(VecWidth::Z512.f64_lanes(), 8);
    }

    #[test]
    fn evex_requirement() {
        assert!(VecReg::zmm(16).requires_evex());
        assert!(!VecReg::zmm(15).requires_evex());
    }

    #[test]
    fn display_gpr() {
        assert_eq!(Gpr::R13.to_string(), "r13");
        assert_eq!(Gpr::Rax.to_string(), "rax");
    }
}
