//! Memory-operand representation (base + index * scale + displacement).

use crate::reg::Gpr;
use std::fmt;

/// The scale factor applied to the index register of a memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Scale {
    /// `index * 1`
    S1 = 0,
    /// `index * 2`
    S2 = 1,
    /// `index * 4`
    S4 = 2,
    /// `index * 8`
    S8 = 3,
}

impl Scale {
    /// The numeric multiplier.
    pub const fn factor(self) -> u8 {
        1 << (self as u8)
    }

    /// Construct from a multiplier of 1, 2, 4 or 8.
    ///
    /// Returns `None` for any other value.
    pub fn from_factor(factor: u8) -> Option<Scale> {
        match factor {
            1 => Some(Scale::S1),
            2 => Some(Scale::S2),
            4 => Some(Scale::S4),
            8 => Some(Scale::S8),
            _ => None,
        }
    }

    /// The two-bit SIB encoding.
    pub const fn bits(self) -> u8 {
        self as u8
    }
}

/// A memory operand of the form `[base + index * scale + disp]`.
///
/// The JITSPMM kernels only ever address memory through a base register with
/// an optional index and 32-bit displacement, which is exactly what this type
/// models. RIP-relative and absolute addressing are intentionally not
/// supported; runtime addresses are materialized into registers with
/// `mov r64, imm64` instead (the paper does the same — see Listing 1/2).
///
/// # Example
///
/// ```
/// use jitspmm_asm::{Mem, Gpr, Scale};
/// let m = Mem::base(Gpr::Rdi).index(Gpr::Rcx, Scale::S4).disp(64);
/// assert_eq!(m.to_string(), "[rdi + rcx*4 + 0x40]");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mem {
    base: Gpr,
    index: Option<(Gpr, Scale)>,
    disp: i32,
}

impl Mem {
    /// `[base]`
    pub fn base(base: Gpr) -> Mem {
        Mem { base, index: None, disp: 0 }
    }

    /// Add an index register and scale: `[base + index*scale + ..]`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is `rsp`, which cannot be encoded as an index
    /// register on x86-64.
    pub fn index(mut self, index: Gpr, scale: Scale) -> Mem {
        assert!(index != Gpr::Rsp, "rsp cannot be used as an index register");
        self.index = Some((index, scale));
        self
    }

    /// Add (replace) the displacement: `[.. + disp]`.
    pub fn disp(mut self, disp: i32) -> Mem {
        self.disp = disp;
        self
    }

    /// Offset the current displacement by `delta` bytes.
    ///
    /// # Panics
    ///
    /// Panics on signed 32-bit overflow of the resulting displacement.
    pub fn offset(mut self, delta: i32) -> Mem {
        self.disp =
            self.disp.checked_add(delta).expect("memory-operand displacement overflowed i32");
        self
    }

    /// The base register.
    pub fn base_reg(&self) -> Gpr {
        self.base
    }

    /// The index register and scale, if any.
    pub fn index_reg(&self) -> Option<(Gpr, Scale)> {
        self.index
    }

    /// The displacement.
    pub fn displacement(&self) -> i32 {
        self.disp
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}", self.base)?;
        if let Some((idx, scale)) = self.index {
            write!(f, " + {}*{}", idx, scale.factor())?;
        }
        if self.disp > 0 {
            write!(f, " + {:#x}", self.disp)?;
        } else if self.disp < 0 {
            write!(f, " - {:#x}", -(self.disp as i64))?;
        }
        write!(f, "]")
    }
}

impl From<Gpr> for Mem {
    fn from(base: Gpr) -> Mem {
        Mem::base(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_round_trip() {
        for s in [Scale::S1, Scale::S2, Scale::S4, Scale::S8] {
            assert_eq!(Scale::from_factor(s.factor()), Some(s));
        }
        assert_eq!(Scale::from_factor(3), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Mem::base(Gpr::Rax).to_string(), "[rax]");
        assert_eq!(Mem::base(Gpr::Rax).disp(-8).to_string(), "[rax - 0x8]");
        assert_eq!(
            Mem::base(Gpr::R13).index(Gpr::R14, Scale::S8).disp(4).to_string(),
            "[r13 + r14*8 + 0x4]"
        );
    }

    #[test]
    fn offset_accumulates() {
        let m = Mem::base(Gpr::Rdi).disp(16).offset(48);
        assert_eq!(m.displacement(), 64);
    }

    #[test]
    #[should_panic]
    fn rsp_index_rejected() {
        let _ = Mem::base(Gpr::Rax).index(Gpr::Rsp, Scale::S1);
    }
}
