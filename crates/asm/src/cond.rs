//! Condition codes for conditional jumps and `setcc`/`cmovcc`.

use std::fmt;

/// An x86 condition code.
///
/// The discriminant is the 4-bit condition encoding (`cc`) appended to the
/// `0F 80`/`0F 90`/`0F 40` opcode bases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Overflow (`jo`).
    O = 0x0,
    /// No overflow (`jno`).
    No = 0x1,
    /// Below — unsigned `<` (`jb`).
    B = 0x2,
    /// Above or equal — unsigned `>=` (`jae`).
    Ae = 0x3,
    /// Equal / zero (`je`).
    E = 0x4,
    /// Not equal / not zero (`jne`).
    Ne = 0x5,
    /// Below or equal — unsigned `<=` (`jbe`).
    Be = 0x6,
    /// Above — unsigned `>` (`ja`).
    A = 0x7,
    /// Sign (`js`).
    S = 0x8,
    /// No sign (`jns`).
    Ns = 0x9,
    /// Parity (`jp`).
    P = 0xA,
    /// No parity (`jnp`).
    Np = 0xB,
    /// Less — signed `<` (`jl`).
    L = 0xC,
    /// Greater or equal — signed `>=` (`jge`).
    Ge = 0xD,
    /// Less or equal — signed `<=` (`jle`).
    Le = 0xE,
    /// Greater — signed `>` (`jg`).
    G = 0xF,
}

impl Cond {
    /// The 4-bit hardware encoding.
    #[inline]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// The logically negated condition (e.g. `E` ↔ `Ne`).
    pub const fn negate(self) -> Cond {
        match self {
            Cond::O => Cond::No,
            Cond::No => Cond::O,
            Cond::B => Cond::Ae,
            Cond::Ae => Cond::B,
            Cond::E => Cond::Ne,
            Cond::Ne => Cond::E,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
            Cond::S => Cond::Ns,
            Cond::Ns => Cond::S,
            Cond::P => Cond::Np,
            Cond::Np => Cond::P,
            Cond::L => Cond::Ge,
            Cond::Ge => Cond::L,
            Cond::Le => Cond::G,
            Cond::G => Cond::Le,
        }
    }

    /// Mnemonic suffix (e.g. `"ge"` for [`Cond::Ge`]).
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Cond::O => "o",
            Cond::No => "no",
            Cond::B => "b",
            Cond::Ae => "ae",
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::S => "s",
            Cond::Ns => "ns",
            Cond::P => "p",
            Cond::Np => "np",
            Cond::L => "l",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::G => "g",
        }
    }

    /// All sixteen condition codes.
    pub const ALL: [Cond; 16] = [
        Cond::O,
        Cond::No,
        Cond::B,
        Cond::Ae,
        Cond::E,
        Cond::Ne,
        Cond::Be,
        Cond::A,
        Cond::S,
        Cond::Ns,
        Cond::P,
        Cond::Np,
        Cond::L,
        Cond::Ge,
        Cond::Le,
        Cond::G,
    ];

    /// Evaluate the condition against flag values.
    ///
    /// Used by the emulator crate; kept here so the definition of each
    /// condition lives in exactly one place.
    pub fn eval(self, cf: bool, zf: bool, sf: bool, of: bool, pf: bool) -> bool {
        match self {
            Cond::O => of,
            Cond::No => !of,
            Cond::B => cf,
            Cond::Ae => !cf,
            Cond::E => zf,
            Cond::Ne => !zf,
            Cond::Be => cf || zf,
            Cond::A => !cf && !zf,
            Cond::S => sf,
            Cond::Ns => !sf,
            Cond::P => pf,
            Cond::Np => !pf,
            Cond::L => sf != of,
            Cond::Ge => sf == of,
            Cond::Le => zf || (sf != of),
            Cond::G => !zf && (sf == of),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negation_is_involutive() {
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            assert_ne!(c.negate(), c);
        }
    }

    #[test]
    fn codes_are_unique_and_match_pairs() {
        for c in Cond::ALL {
            // Negation flips the low bit of the encoding.
            assert_eq!(c.negate().code(), c.code() ^ 1);
        }
    }

    #[test]
    fn eval_signed_comparisons() {
        // cmp 5, 7 => 5 - 7 = negative, no overflow: SF=1, OF=0, ZF=0.
        assert!(Cond::L.eval(true, false, true, false, false));
        assert!(!Cond::Ge.eval(true, false, true, false, false));
        // cmp 7, 7 => zero.
        assert!(Cond::Ge.eval(false, true, false, false, true));
        assert!(Cond::Le.eval(false, true, false, false, true));
        assert!(!Cond::G.eval(false, true, false, false, true));
        assert!(Cond::E.eval(false, true, false, false, true));
    }

    #[test]
    fn eval_unsigned_comparisons() {
        // cmp 3, 9 (unsigned): borrow => CF=1.
        assert!(Cond::B.eval(true, false, true, false, false));
        assert!(!Cond::Ae.eval(true, false, true, false, false));
        assert!(Cond::Be.eval(true, false, true, false, false));
        assert!(!Cond::A.eval(true, false, true, false, false));
    }
}
