//! Error type for assembly and executable-memory operations.

use std::fmt;

/// Errors produced while assembling code or materializing it into executable
/// memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced by a jump but never bound to a position.
    UnboundLabel {
        /// Index of the offending label.
        label: usize,
    },
    /// A label was bound more than once.
    LabelRebound {
        /// Index of the offending label.
        label: usize,
    },
    /// A relative jump target was further away than the displacement width
    /// allows.
    JumpOutOfRange {
        /// Byte position of the fixup.
        at: usize,
        /// Computed displacement that did not fit.
        disp: i64,
    },
    /// The operating system refused to allocate or protect executable memory.
    ExecAlloc {
        /// The `errno`-style code returned by the failing call.
        code: i32,
        /// Which call failed (`"mmap"` or `"mprotect"`).
        call: &'static str,
    },
    /// Attempted to materialize an empty code buffer.
    EmptyCode,
    /// A patch into a writable buffer fell outside the mapped code bytes.
    PatchOutOfRange {
        /// Byte offset of the attempted patch.
        at: usize,
        /// Length of the mapped code.
        code_len: usize,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label } => {
                write!(f, "label {label} referenced but never bound")
            }
            AsmError::LabelRebound { label } => write!(f, "label {label} bound twice"),
            AsmError::JumpOutOfRange { at, disp } => {
                write!(f, "jump displacement {disp} at offset {at} does not fit in 32 bits")
            }
            AsmError::ExecAlloc { code, call } => {
                write!(f, "{call} for executable memory failed with errno {code}")
            }
            AsmError::EmptyCode => write!(f, "cannot make an empty code buffer executable"),
            AsmError::PatchOutOfRange { at, code_len } => {
                write!(f, "8-byte patch at offset {at} exceeds mapped code of {code_len} bytes")
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            AsmError::UnboundLabel { label: 3 },
            AsmError::LabelRebound { label: 1 },
            AsmError::JumpOutOfRange { at: 10, disp: 1 << 40 },
            AsmError::ExecAlloc { code: 12, call: "mmap" },
            AsmError::EmptyCode,
            AsmError::PatchOutOfRange { at: 100, code_len: 64 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
