//! The [`Assembler`]: instruction-emitting methods, labels and finalization.

use crate::buffer::CodeBuffer;
use crate::cond::Cond;
use crate::encode::{emit_evex, emit_legacy, emit_legacy_opreg, emit_vex, OpMap, Pp, RegMem, Vl};
use crate::error::AsmError;
use crate::label::{Fixup, FixupKind, Label};
use crate::mem::Mem;
use crate::reg::{Gpr, VecReg, VecWidth, Xmm};

/// An x86-64 instruction assembler.
///
/// Instructions are appended by calling the emitting methods; control flow
/// targets are expressed with [`Label`]s which may be bound before or after
/// the jumps that reference them. [`Assembler::finalize`] resolves all
/// fixups and returns the machine code, ready to be placed in an
/// [`crate::ExecutableBuffer`].
///
/// An optional *listing* records a textual mnemonic per emitted instruction,
/// which the tests and the profiling tooling use to inspect generated code
/// without a disassembler.
///
/// # Example
///
/// ```
/// use jitspmm_asm::{Assembler, Gpr, Cond, ExecutableBuffer};
///
/// # fn main() -> Result<(), jitspmm_asm::AsmError> {
/// // fn(n: u64) -> u64 { (0..n).sum() }
/// let mut asm = Assembler::new();
/// let (loop_start, done) = (asm.new_label(), asm.new_label());
/// asm.xor_rr64(Gpr::Rax, Gpr::Rax);      // acc = 0
/// asm.xor_rr64(Gpr::Rcx, Gpr::Rcx);      // i = 0
/// asm.bind(loop_start)?;
/// asm.cmp_rr64(Gpr::Rcx, Gpr::Rdi);
/// asm.jcc(Cond::Ge, done);
/// asm.add_rr64(Gpr::Rax, Gpr::Rcx);
/// asm.inc_r64(Gpr::Rcx);
/// asm.jmp(loop_start);
/// asm.bind(done)?;
/// asm.ret();
/// let buf = ExecutableBuffer::from_code(&asm.finalize()?)?;
/// let f: extern "C" fn(u64) -> u64 = unsafe { buf.as_fn1() };
/// assert_eq!(f(10), 45);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    buf: CodeBuffer,
    labels: Vec<Option<usize>>,
    fixups: Vec<Fixup>,
    listing: Option<Vec<(usize, String)>>,
    errors: Vec<AsmError>,
}

macro_rules! note {
    ($self:ident, $($fmt:tt)*) => {
        if let Some(listing) = $self.listing.as_mut() {
            let at = $self.buf.len();
            let text = format!($($fmt)*);
            listing.push((at, text));
        }
    };
}

impl Assembler {
    /// Create an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Create an empty assembler that records a textual listing of every
    /// emitted instruction (useful for debugging and tests; adds formatting
    /// overhead to code generation).
    pub fn with_listing() -> Assembler {
        Assembler { listing: Some(Vec::new()), ..Assembler::default() }
    }

    /// The number of bytes emitted so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether any bytes have been emitted.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The recorded listing (offset, mnemonic) if listing mode is enabled.
    pub fn listing(&self) -> Option<&[(usize, String)]> {
        self.listing.as_deref()
    }

    /// Allocate a new, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::LabelRebound`] if the label was already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        let slot = &mut self.labels[label.0];
        if slot.is_some() {
            return Err(AsmError::LabelRebound { label: label.0 });
        }
        *slot = Some(self.buf.len());
        note!(self, ".L{}:", label.0);
        Ok(())
    }

    /// Resolve all label references and return the finished machine code.
    ///
    /// # Errors
    ///
    /// Returns the first encoding error recorded while emitting, or an error
    /// for unbound labels / out-of-range jumps.
    pub fn finalize(mut self) -> Result<Vec<u8>, AsmError> {
        if let Some(err) = self.errors.into_iter().next() {
            return Err(err);
        }
        for fixup in &self.fixups {
            let target = self.labels[fixup.label.0]
                .ok_or(AsmError::UnboundLabel { label: fixup.label.0 })?;
            let disp = target as i64 - fixup.next_inst as i64;
            match fixup.kind {
                FixupKind::Rel32 => {
                    if disp < i32::MIN as i64 || disp > i32::MAX as i64 {
                        return Err(AsmError::JumpOutOfRange { at: fixup.at, disp });
                    }
                    self.buf.patch_u32(fixup.at, disp as i32 as u32);
                }
            }
        }
        Ok(self.buf.into_bytes())
    }

    // ------------------------------------------------------------------
    // General-purpose register instructions
    // ------------------------------------------------------------------

    /// `mov r64, imm64` (movabs).
    pub fn mov_ri64(&mut self, dst: Gpr, imm: i64) {
        note!(self, "mov {dst}, {imm:#x}");
        emit_legacy_opreg(&mut self.buf, true, 0xB8, dst.id());
        self.buf.push_u64(imm as u64);
    }

    /// `mov r32, imm32` (zero-extends into the full 64-bit register).
    pub fn mov_ri32(&mut self, dst: Gpr, imm: u32) {
        note!(self, "mov {}d, {imm:#x}", dst);
        emit_legacy_opreg(&mut self.buf, false, 0xB8, dst.id());
        self.buf.push_u32(imm);
    }

    /// `mov r64, r64`.
    pub fn mov_rr64(&mut self, dst: Gpr, src: Gpr) {
        note!(self, "mov {dst}, {src}");
        emit_legacy(&mut self.buf, &[], true, &[0x89], src.id(), &RegMem::Reg(dst.id()));
    }

    /// `mov r64, [mem]` (64-bit load).
    pub fn mov_rm64(&mut self, dst: Gpr, mem: Mem) {
        note!(self, "mov {dst}, qword {mem}");
        emit_legacy(&mut self.buf, &[], true, &[0x8B], dst.id(), &RegMem::Mem(mem));
    }

    /// `mov [mem], r64` (64-bit store).
    pub fn mov_mr64(&mut self, mem: Mem, src: Gpr) {
        note!(self, "mov qword {mem}, {src}");
        emit_legacy(&mut self.buf, &[], true, &[0x89], src.id(), &RegMem::Mem(mem));
    }

    /// `mov r32, [mem]` — 32-bit load, zero-extended into the 64-bit register.
    pub fn mov_rm32(&mut self, dst: Gpr, mem: Mem) {
        note!(self, "mov {}d, dword {mem}", dst);
        emit_legacy(&mut self.buf, &[], false, &[0x8B], dst.id(), &RegMem::Mem(mem));
    }

    /// `mov [mem], r32` (32-bit store).
    pub fn mov_mr32(&mut self, mem: Mem, src: Gpr) {
        note!(self, "mov dword {mem}, {}d", src);
        emit_legacy(&mut self.buf, &[], false, &[0x89], src.id(), &RegMem::Mem(mem));
    }

    /// `add r64, imm32` (sign-extended immediate).
    pub fn add_ri64(&mut self, dst: Gpr, imm: i32) {
        note!(self, "add {dst}, {imm}");
        if (-128..=127).contains(&imm) {
            emit_legacy(&mut self.buf, &[], true, &[0x83], 0, &RegMem::Reg(dst.id()));
            self.buf.push_u8(imm as i8 as u8);
        } else {
            emit_legacy(&mut self.buf, &[], true, &[0x81], 0, &RegMem::Reg(dst.id()));
            self.buf.push_i32(imm);
        }
    }

    /// `add r64, r64`.
    pub fn add_rr64(&mut self, dst: Gpr, src: Gpr) {
        note!(self, "add {dst}, {src}");
        emit_legacy(&mut self.buf, &[], true, &[0x01], src.id(), &RegMem::Reg(dst.id()));
    }

    /// `add r64, [mem]`.
    pub fn add_rm64(&mut self, dst: Gpr, mem: Mem) {
        note!(self, "add {dst}, qword {mem}");
        emit_legacy(&mut self.buf, &[], true, &[0x03], dst.id(), &RegMem::Mem(mem));
    }

    /// `sub r64, imm32` (sign-extended immediate).
    pub fn sub_ri64(&mut self, dst: Gpr, imm: i32) {
        note!(self, "sub {dst}, {imm}");
        if (-128..=127).contains(&imm) {
            emit_legacy(&mut self.buf, &[], true, &[0x83], 5, &RegMem::Reg(dst.id()));
            self.buf.push_u8(imm as i8 as u8);
        } else {
            emit_legacy(&mut self.buf, &[], true, &[0x81], 5, &RegMem::Reg(dst.id()));
            self.buf.push_i32(imm);
        }
    }

    /// `sub r64, r64`.
    pub fn sub_rr64(&mut self, dst: Gpr, src: Gpr) {
        note!(self, "sub {dst}, {src}");
        emit_legacy(&mut self.buf, &[], true, &[0x29], src.id(), &RegMem::Reg(dst.id()));
    }

    /// `cmp r64, r64`.
    pub fn cmp_rr64(&mut self, a: Gpr, b: Gpr) {
        note!(self, "cmp {a}, {b}");
        emit_legacy(&mut self.buf, &[], true, &[0x39], b.id(), &RegMem::Reg(a.id()));
    }

    /// `cmp r64, imm32` (sign-extended immediate).
    pub fn cmp_ri64(&mut self, a: Gpr, imm: i32) {
        note!(self, "cmp {a}, {imm}");
        if (-128..=127).contains(&imm) {
            emit_legacy(&mut self.buf, &[], true, &[0x83], 7, &RegMem::Reg(a.id()));
            self.buf.push_u8(imm as i8 as u8);
        } else {
            emit_legacy(&mut self.buf, &[], true, &[0x81], 7, &RegMem::Reg(a.id()));
            self.buf.push_i32(imm);
        }
    }

    /// `cmp r64, [mem]`.
    pub fn cmp_rm64(&mut self, a: Gpr, mem: Mem) {
        note!(self, "cmp {a}, qword {mem}");
        emit_legacy(&mut self.buf, &[], true, &[0x3B], a.id(), &RegMem::Mem(mem));
    }

    /// `inc r64`.
    pub fn inc_r64(&mut self, dst: Gpr) {
        note!(self, "inc {dst}");
        emit_legacy(&mut self.buf, &[], true, &[0xFF], 0, &RegMem::Reg(dst.id()));
    }

    /// `dec r64`.
    pub fn dec_r64(&mut self, dst: Gpr) {
        note!(self, "dec {dst}");
        emit_legacy(&mut self.buf, &[], true, &[0xFF], 1, &RegMem::Reg(dst.id()));
    }

    /// `lea r64, [mem]`.
    pub fn lea(&mut self, dst: Gpr, mem: Mem) {
        note!(self, "lea {dst}, {mem}");
        emit_legacy(&mut self.buf, &[], true, &[0x8D], dst.id(), &RegMem::Mem(mem));
    }

    /// `shl r64, imm8`.
    pub fn shl_ri64(&mut self, dst: Gpr, imm: u8) {
        note!(self, "shl {dst}, {imm}");
        emit_legacy(&mut self.buf, &[], true, &[0xC1], 4, &RegMem::Reg(dst.id()));
        self.buf.push_u8(imm);
    }

    /// `shr r64, imm8` (logical right shift).
    pub fn shr_ri64(&mut self, dst: Gpr, imm: u8) {
        note!(self, "shr {dst}, {imm}");
        emit_legacy(&mut self.buf, &[], true, &[0xC1], 5, &RegMem::Reg(dst.id()));
        self.buf.push_u8(imm);
    }

    /// `imul r64, r64, imm32`.
    pub fn imul_rri64(&mut self, dst: Gpr, src: Gpr, imm: i32) {
        note!(self, "imul {dst}, {src}, {imm}");
        emit_legacy(&mut self.buf, &[], true, &[0x69], dst.id(), &RegMem::Reg(src.id()));
        self.buf.push_i32(imm);
    }

    /// `imul r64, r64`.
    pub fn imul_rr64(&mut self, dst: Gpr, src: Gpr) {
        note!(self, "imul {dst}, {src}");
        emit_legacy(&mut self.buf, &[], true, &[0x0F, 0xAF], dst.id(), &RegMem::Reg(src.id()));
    }

    /// `xor r64, r64` (the canonical zeroing idiom).
    pub fn xor_rr64(&mut self, dst: Gpr, src: Gpr) {
        note!(self, "xor {dst}, {src}");
        emit_legacy(&mut self.buf, &[], true, &[0x31], src.id(), &RegMem::Reg(dst.id()));
    }

    /// `test r64, r64`.
    pub fn test_rr64(&mut self, a: Gpr, b: Gpr) {
        note!(self, "test {a}, {b}");
        emit_legacy(&mut self.buf, &[], true, &[0x85], b.id(), &RegMem::Reg(a.id()));
    }

    /// `push r64`.
    pub fn push_r64(&mut self, reg: Gpr) {
        note!(self, "push {reg}");
        emit_legacy_opreg(&mut self.buf, false, 0x50, reg.id());
    }

    /// `pop r64`.
    pub fn pop_r64(&mut self, reg: Gpr) {
        note!(self, "pop {reg}");
        emit_legacy_opreg(&mut self.buf, false, 0x58, reg.id());
    }

    /// `lock xadd [mem], r64` — the atomic fetch-and-add used by dynamic row
    /// dispatching (Listing 1 of the paper).
    pub fn lock_xadd_mr64(&mut self, mem: Mem, src: Gpr) {
        note!(self, "lock xadd qword {mem}, {src}");
        emit_legacy(&mut self.buf, &[0xF0], true, &[0x0F, 0xC1], src.id(), &RegMem::Mem(mem));
    }

    /// `ret`.
    pub fn ret(&mut self) {
        note!(self, "ret");
        self.buf.push_u8(0xC3);
    }

    /// `nop`.
    pub fn nop(&mut self) {
        note!(self, "nop");
        self.buf.push_u8(0x90);
    }

    /// `pause` — spin-wait hint used in contended loops.
    pub fn pause(&mut self) {
        note!(self, "pause");
        self.buf.extend(&[0xF3, 0x90]);
    }

    // ------------------------------------------------------------------
    // Control flow
    // ------------------------------------------------------------------

    fn record_fixup(&mut self, label: Label) {
        let at = self.buf.len();
        self.buf.push_i32(0);
        self.fixups.push(Fixup { at, next_inst: self.buf.len(), label, kind: FixupKind::Rel32 });
    }

    /// `jmp label` (rel32 form).
    pub fn jmp(&mut self, label: Label) {
        note!(self, "jmp .L{}", label.0);
        self.buf.push_u8(0xE9);
        self.record_fixup(label);
    }

    /// `jcc label` (rel32 form), e.g. `jge`, `jl`, `jne`.
    pub fn jcc(&mut self, cond: Cond, label: Label) {
        note!(self, "j{} .L{}", cond.mnemonic(), label.0);
        self.buf.push_u8(0x0F);
        self.buf.push_u8(0x80 + cond.code());
        self.record_fixup(label);
    }

    /// `call r64` (indirect call through a register).
    pub fn call_r64(&mut self, reg: Gpr) {
        note!(self, "call {reg}");
        emit_legacy(&mut self.buf, &[], false, &[0xFF], 2, &RegMem::Reg(reg.id()));
    }

    /// `jmp r64` (indirect jump through a register).
    pub fn jmp_r64(&mut self, reg: Gpr) {
        note!(self, "jmp {reg}");
        emit_legacy(&mut self.buf, &[], false, &[0xFF], 4, &RegMem::Reg(reg.id()));
    }

    // ------------------------------------------------------------------
    // SIMD: encoding-selection helpers
    // ------------------------------------------------------------------

    /// Whether any operand forces EVEX encoding (512-bit width or register
    /// ids ≥ 16).
    fn needs_evex(ops: &[VecReg]) -> bool {
        ops.iter().any(|r| r.width() == VecWidth::Z512 || r.requires_evex())
    }

    fn vl_of(width: VecWidth) -> Vl {
        match width {
            VecWidth::X128 => Vl::L128,
            VecWidth::Y256 => Vl::L256,
            VecWidth::Z512 => Vl::L512,
        }
    }

    /// Emit a three-operand AVX instruction `dst := op(src1, src2_rm)` where
    /// the second source is a register or memory operand, choosing VEX or
    /// EVEX automatically.
    ///
    /// `evex_w` lets instructions whose W bit differs between VEX and EVEX
    /// forms (e.g. `vbroadcastsd`) override the W used for EVEX.
    fn vex_or_evex(
        &mut self,
        map: OpMap,
        pp: Pp,
        w: bool,
        evex_w: bool,
        opcode: u8,
        dst: VecReg,
        src1: VecReg,
        src2: &RegMem,
        width: VecWidth,
    ) {
        let force_evex = match src2 {
            RegMem::Reg(id) => *id >= 16,
            RegMem::Mem(_) => false,
        };
        let vl = Self::vl_of(width);
        if Self::needs_evex(&[dst, src1]) || force_evex || width == VecWidth::Z512 {
            emit_evex(&mut self.buf, map, pp, vl, evex_w, opcode, dst.id(), src1.id(), src2);
        } else {
            emit_vex(&mut self.buf, map, pp, vl, w, opcode, dst.id(), src1.id(), src2);
        }
    }

    // ------------------------------------------------------------------
    // SIMD: register zeroing
    // ------------------------------------------------------------------

    /// `vxorps dst, a, b` — packed single-precision XOR (the register-zeroing
    /// idiom of Listing 2). 512-bit and high-register forms require AVX-512DQ.
    pub fn vxorps(&mut self, dst: VecReg, a: VecReg, b: VecReg) {
        note!(self, "vxorps {dst}, {a}, {b}");
        self.vex_or_evex(
            OpMap::M0F,
            Pp::None,
            false,
            false,
            0x57,
            dst,
            a,
            &RegMem::Reg(b.id()),
            dst.width(),
        );
    }

    /// `vpxord dst, a, b` — packed 32-bit integer XOR. The AVX-512F
    /// alternative to 512-bit `vxorps` on CPUs without AVX-512DQ.
    pub fn vpxord(&mut self, dst: VecReg, a: VecReg, b: VecReg) {
        note!(self, "vpxord {dst}, {a}, {b}");
        emit_evex(
            &mut self.buf,
            OpMap::M0F,
            Pp::P66,
            Self::vl_of(dst.width()),
            false,
            0xEF,
            dst.id(),
            a.id(),
            &RegMem::Reg(b.id()),
        );
    }

    // ------------------------------------------------------------------
    // SIMD: broadcasts
    // ------------------------------------------------------------------

    /// `vbroadcastss dst, dword [mem]` — broadcast one f32 to every lane.
    pub fn vbroadcastss(&mut self, dst: VecReg, mem: Mem) {
        note!(self, "vbroadcastss {dst}, dword {mem}");
        self.vex_or_evex(
            OpMap::M0F38,
            Pp::P66,
            false,
            false,
            0x18,
            dst,
            VecReg::xmm(0),
            &RegMem::Mem(mem),
            dst.width(),
        );
    }

    /// `vbroadcastsd dst, qword [mem]` — broadcast one f64 to every lane.
    ///
    /// Only 256-bit and 512-bit destinations exist architecturally.
    pub fn vbroadcastsd(&mut self, dst: VecReg, mem: Mem) {
        note!(self, "vbroadcastsd {dst}, qword {mem}");
        debug_assert!(dst.width() != VecWidth::X128, "vbroadcastsd has no 128-bit form");
        // VEX form uses W0; EVEX form uses W1.
        self.vex_or_evex(
            OpMap::M0F38,
            Pp::P66,
            false,
            true,
            0x19,
            dst,
            VecReg::xmm(0),
            &RegMem::Mem(mem),
            dst.width(),
        );
    }

    // ------------------------------------------------------------------
    // SIMD: fused multiply-add
    // ------------------------------------------------------------------

    /// `vfmadd231ps dst, a, [mem]` — packed f32 FMA: `dst += a * mem`.
    pub fn vfmadd231ps_m(&mut self, dst: VecReg, a: VecReg, mem: Mem) {
        note!(self, "vfmadd231ps {dst}, {a}, {mem}");
        self.vex_or_evex(
            OpMap::M0F38,
            Pp::P66,
            false,
            false,
            0xB8,
            dst,
            a,
            &RegMem::Mem(mem),
            dst.width(),
        );
    }

    /// `vfmadd231ps dst, a, b` (register form).
    pub fn vfmadd231ps_r(&mut self, dst: VecReg, a: VecReg, b: VecReg) {
        note!(self, "vfmadd231ps {dst}, {a}, {b}");
        self.vex_or_evex(
            OpMap::M0F38,
            Pp::P66,
            false,
            false,
            0xB8,
            dst,
            a,
            &RegMem::Reg(b.id()),
            dst.width(),
        );
    }

    /// `vfmadd231pd dst, a, [mem]` — packed f64 FMA: `dst += a * mem`.
    pub fn vfmadd231pd_m(&mut self, dst: VecReg, a: VecReg, mem: Mem) {
        note!(self, "vfmadd231pd {dst}, {a}, {mem}");
        self.vex_or_evex(
            OpMap::M0F38,
            Pp::P66,
            true,
            true,
            0xB8,
            dst,
            a,
            &RegMem::Mem(mem),
            dst.width(),
        );
    }

    /// `vfmadd231ss dst, a, dword [mem]` — scalar f32 FMA on the low lane.
    pub fn vfmadd231ss_m(&mut self, dst: Xmm, a: Xmm, mem: Mem) {
        note!(self, "vfmadd231ss xmm{}, xmm{}, {mem}", dst.id(), a.id());
        self.vex_or_evex(
            OpMap::M0F38,
            Pp::P66,
            false,
            false,
            0xB9,
            VecReg::from(dst),
            VecReg::from(a),
            &RegMem::Mem(mem),
            VecWidth::X128,
        );
    }

    /// `vfmadd231sd dst, a, qword [mem]` — scalar f64 FMA on the low lane.
    pub fn vfmadd231sd_m(&mut self, dst: Xmm, a: Xmm, mem: Mem) {
        note!(self, "vfmadd231sd xmm{}, xmm{}, {mem}", dst.id(), a.id());
        self.vex_or_evex(
            OpMap::M0F38,
            Pp::P66,
            true,
            true,
            0xB9,
            VecReg::from(dst),
            VecReg::from(a),
            &RegMem::Mem(mem),
            VecWidth::X128,
        );
    }

    // ------------------------------------------------------------------
    // SIMD: multiply / add (non-FMA fallback path)
    // ------------------------------------------------------------------

    /// `vmulps dst, a, [mem]` — packed f32 multiply.
    pub fn vmulps_m(&mut self, dst: VecReg, a: VecReg, mem: Mem) {
        note!(self, "vmulps {dst}, {a}, {mem}");
        self.vex_or_evex(
            OpMap::M0F,
            Pp::None,
            false,
            false,
            0x59,
            dst,
            a,
            &RegMem::Mem(mem),
            dst.width(),
        );
    }

    /// `vaddps dst, a, b` — packed f32 add.
    pub fn vaddps_r(&mut self, dst: VecReg, a: VecReg, b: VecReg) {
        note!(self, "vaddps {dst}, {a}, {b}");
        self.vex_or_evex(
            OpMap::M0F,
            Pp::None,
            false,
            false,
            0x58,
            dst,
            a,
            &RegMem::Reg(b.id()),
            dst.width(),
        );
    }

    /// `vmulss dst, a, dword [mem]` — scalar f32 multiply.
    pub fn vmulss_m(&mut self, dst: Xmm, a: Xmm, mem: Mem) {
        note!(self, "vmulss xmm{}, xmm{}, {mem}", dst.id(), a.id());
        self.vex_or_evex(
            OpMap::M0F,
            Pp::PF3,
            false,
            false,
            0x59,
            VecReg::from(dst),
            VecReg::from(a),
            &RegMem::Mem(mem),
            VecWidth::X128,
        );
    }

    /// `vaddss dst, a, b` — scalar f32 add (register form).
    pub fn vaddss_r(&mut self, dst: Xmm, a: Xmm, b: Xmm) {
        note!(self, "vaddss xmm{}, xmm{}, xmm{}", dst.id(), a.id(), b.id());
        self.vex_or_evex(
            OpMap::M0F,
            Pp::PF3,
            false,
            false,
            0x58,
            VecReg::from(dst),
            VecReg::from(a),
            &RegMem::Reg(b.id()),
            VecWidth::X128,
        );
    }

    /// `vmulsd dst, a, qword [mem]` — scalar f64 multiply.
    pub fn vmulsd_m(&mut self, dst: Xmm, a: Xmm, mem: Mem) {
        note!(self, "vmulsd xmm{}, xmm{}, {mem}", dst.id(), a.id());
        self.vex_or_evex(
            OpMap::M0F,
            Pp::PF2,
            false,
            true,
            0x59,
            VecReg::from(dst),
            VecReg::from(a),
            &RegMem::Mem(mem),
            VecWidth::X128,
        );
    }

    /// `vaddsd dst, a, b` — scalar f64 add (register form).
    pub fn vaddsd_r(&mut self, dst: Xmm, a: Xmm, b: Xmm) {
        note!(self, "vaddsd xmm{}, xmm{}, xmm{}", dst.id(), a.id(), b.id());
        self.vex_or_evex(
            OpMap::M0F,
            Pp::PF2,
            false,
            true,
            0x58,
            VecReg::from(dst),
            VecReg::from(a),
            &RegMem::Reg(b.id()),
            VecWidth::X128,
        );
    }

    // ------------------------------------------------------------------
    // SIMD: loads and stores
    // ------------------------------------------------------------------

    /// `vmovups dst, [mem]` — unaligned packed f32 load.
    pub fn vmovups_load(&mut self, dst: VecReg, mem: Mem) {
        note!(self, "vmovups {dst}, {mem}");
        self.vex_or_evex(
            OpMap::M0F,
            Pp::None,
            false,
            false,
            0x10,
            dst,
            VecReg::xmm(0),
            &RegMem::Mem(mem),
            dst.width(),
        );
    }

    /// `vmovups [mem], src` — unaligned packed f32 store.
    pub fn vmovups_store(&mut self, mem: Mem, src: VecReg) {
        note!(self, "vmovups {mem}, {src}");
        self.vex_or_evex(
            OpMap::M0F,
            Pp::None,
            false,
            false,
            0x11,
            src,
            VecReg::xmm(0),
            &RegMem::Mem(mem),
            src.width(),
        );
    }

    /// `vmovupd dst, [mem]` — unaligned packed f64 load.
    pub fn vmovupd_load(&mut self, dst: VecReg, mem: Mem) {
        note!(self, "vmovupd {dst}, {mem}");
        self.vex_or_evex(
            OpMap::M0F,
            Pp::P66,
            false,
            true,
            0x10,
            dst,
            VecReg::xmm(0),
            &RegMem::Mem(mem),
            dst.width(),
        );
    }

    /// `vmovupd [mem], src` — unaligned packed f64 store.
    pub fn vmovupd_store(&mut self, mem: Mem, src: VecReg) {
        note!(self, "vmovupd {mem}, {src}");
        self.vex_or_evex(
            OpMap::M0F,
            Pp::P66,
            false,
            true,
            0x11,
            src,
            VecReg::xmm(0),
            &RegMem::Mem(mem),
            src.width(),
        );
    }

    /// `vmovss dst, dword [mem]` — scalar f32 load into the low lane (upper
    /// lanes zeroed).
    pub fn vmovss_load(&mut self, dst: Xmm, mem: Mem) {
        note!(self, "vmovss xmm{}, dword {mem}", dst.id());
        self.vex_or_evex(
            OpMap::M0F,
            Pp::PF3,
            false,
            false,
            0x10,
            VecReg::from(dst),
            VecReg::xmm(0),
            &RegMem::Mem(mem),
            VecWidth::X128,
        );
    }

    /// `vmovss dword [mem], src` — scalar f32 store from the low lane.
    pub fn vmovss_store(&mut self, mem: Mem, src: Xmm) {
        note!(self, "vmovss dword {mem}, xmm{}", src.id());
        self.vex_or_evex(
            OpMap::M0F,
            Pp::PF3,
            false,
            false,
            0x11,
            VecReg::from(src),
            VecReg::xmm(0),
            &RegMem::Mem(mem),
            VecWidth::X128,
        );
    }

    /// `vmovsd dst, qword [mem]` — scalar f64 load into the low lane.
    pub fn vmovsd_load(&mut self, dst: Xmm, mem: Mem) {
        note!(self, "vmovsd xmm{}, qword {mem}", dst.id());
        self.vex_or_evex(
            OpMap::M0F,
            Pp::PF2,
            false,
            true,
            0x10,
            VecReg::from(dst),
            VecReg::xmm(0),
            &RegMem::Mem(mem),
            VecWidth::X128,
        );
    }

    /// `vmovsd qword [mem], src` — scalar f64 store from the low lane.
    pub fn vmovsd_store(&mut self, mem: Mem, src: Xmm) {
        note!(self, "vmovsd qword {mem}, xmm{}", src.id());
        self.vex_or_evex(
            OpMap::M0F,
            Pp::PF2,
            false,
            true,
            0x11,
            VecReg::from(src),
            VecReg::xmm(0),
            &RegMem::Mem(mem),
            VecWidth::X128,
        );
    }

    /// `vzeroupper` — clear the upper halves of the YMM registers; emitted
    /// before returning to code that may use legacy SSE.
    pub fn vzeroupper(&mut self) {
        note!(self, "vzeroupper");
        self.buf.extend(&[0xC5, 0xF8, 0x77]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing_records_each_instruction() {
        let mut asm = Assembler::with_listing();
        asm.mov_ri64(Gpr::Rax, 1);
        asm.ret();
        let listing = asm.listing().unwrap().to_vec();
        assert_eq!(listing.len(), 2);
        assert!(listing[0].1.starts_with("mov rax"));
        assert_eq!(listing[1].1, "ret");
    }

    #[test]
    fn finalize_empty_is_ok() {
        let asm = Assembler::new();
        assert!(asm.finalize().unwrap().is_empty());
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut asm = Assembler::new();
        let l = asm.new_label();
        asm.jmp(l);
        assert_eq!(asm.finalize().unwrap_err(), AsmError::UnboundLabel { label: 0 });
    }

    #[test]
    fn rebound_label_is_an_error() {
        let mut asm = Assembler::new();
        let l = asm.new_label();
        asm.bind(l).unwrap();
        assert_eq!(asm.bind(l).unwrap_err(), AsmError::LabelRebound { label: 0 });
    }

    #[test]
    fn backward_jump_displacement() {
        let mut asm = Assembler::new();
        let l = asm.new_label();
        asm.bind(l).unwrap();
        asm.nop();
        asm.jmp(l);
        let code = asm.finalize().unwrap();
        // nop (1 byte) + jmp rel32 (5 bytes): target 0, next_inst 6 => disp -6.
        assert_eq!(code, vec![0x90, 0xE9, 0xFA, 0xFF, 0xFF, 0xFF]);
    }

    #[test]
    fn forward_jcc_displacement() {
        let mut asm = Assembler::new();
        let l = asm.new_label();
        asm.jcc(Cond::Ge, l);
        asm.nop();
        asm.bind(l).unwrap();
        let code = asm.finalize().unwrap();
        // jge rel32 is 6 bytes; target is 7 => disp = 1.
        assert_eq!(code, vec![0x0F, 0x8D, 0x01, 0x00, 0x00, 0x00, 0x90]);
    }

    #[test]
    fn known_encodings_golden() {
        let mut asm = Assembler::new();
        asm.mov_ri64(Gpr::Rdi, 0x1122334455667788);
        asm.lock_xadd_mr64(Mem::base(Gpr::Rdi), Gpr::Rsi);
        asm.ret();
        let code = asm.finalize().unwrap();
        assert_eq!(
            code,
            vec![
                0x48, 0xBF, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, // movabs rdi, ...
                0xF0, 0x48, 0x0F, 0xC1, 0x37, // lock xadd [rdi], rsi
                0xC3,
            ]
        );
    }

    #[test]
    fn vfmadd_zmm_encoding_golden() {
        // Matches line 20 of Listing 2 in the paper:
        //   vfmadd231ps zmm0, zmm31, [r12]
        let mut asm = Assembler::new();
        asm.vfmadd231ps_m(VecReg::zmm(0), VecReg::zmm(31), Mem::base(Gpr::R12));
        let code = asm.finalize().unwrap();
        // 62 D2 05 40 B8 04 24  (SIB required because base is r12).
        assert_eq!(code, vec![0x62, 0xD2, 0x05, 0x40, 0xB8, 0x04, 0x24]);
    }

    #[test]
    fn vxorps_xmm_uses_vex() {
        let mut asm = Assembler::new();
        asm.vxorps(VecReg::xmm(3), VecReg::xmm(3), VecReg::xmm(3));
        let code = asm.finalize().unwrap();
        assert_eq!(code[0], 0xC4);
        assert_eq!(code.len(), 5);
    }

    #[test]
    fn vxorps_zmm_uses_evex() {
        let mut asm = Assembler::new();
        asm.vxorps(VecReg::zmm(1), VecReg::zmm(1), VecReg::zmm(1));
        let code = asm.finalize().unwrap();
        assert_eq!(code[0], 0x62);
    }

    #[test]
    fn add_small_immediate_uses_imm8_form() {
        let mut asm = Assembler::new();
        asm.add_ri64(Gpr::Rax, 8);
        let short = asm.finalize().unwrap();
        let mut asm = Assembler::new();
        asm.add_ri64(Gpr::Rax, 1 << 20);
        let long = asm.finalize().unwrap();
        assert!(short.len() < long.len());
        assert_eq!(short, vec![0x48, 0x83, 0xC0, 0x08]);
    }
}
