//! CPU feature detection and ISA-level selection.

use std::fmt;

/// The SIMD instruction-set tiers that the JITSPMM code generator can target.
///
/// The ordering is meaningful: higher tiers strictly extend lower tiers, so
/// `IsaLevel` is `Ord` and the generator can "round down" to whatever the
/// host supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IsaLevel {
    /// No SIMD accumulators: scalar SSE arithmetic on the low XMM lane only.
    Scalar,
    /// 128-bit packed arithmetic (SSE/AVX-128 encodings, 4 × f32 per
    /// register).
    Sse128,
    /// 256-bit packed arithmetic with FMA (8 × f32 per register).
    Avx2,
    /// 512-bit packed arithmetic with 32 architectural registers
    /// (16 × f32 per register).
    Avx512,
}

impl IsaLevel {
    /// All tiers, lowest to highest.
    pub const ALL: [IsaLevel; 4] =
        [IsaLevel::Scalar, IsaLevel::Sse128, IsaLevel::Avx2, IsaLevel::Avx512];

    /// Width in f32 lanes of the widest accumulator register at this tier.
    pub const fn max_f32_lanes(self) -> usize {
        match self {
            IsaLevel::Scalar => 1,
            IsaLevel::Sse128 => 4,
            IsaLevel::Avx2 => 8,
            IsaLevel::Avx512 => 16,
        }
    }

    /// Width in f64 lanes of the widest accumulator register at this tier.
    pub const fn max_f64_lanes(self) -> usize {
        match self {
            IsaLevel::Scalar => 1,
            IsaLevel::Sse128 => 2,
            IsaLevel::Avx2 => 4,
            IsaLevel::Avx512 => 8,
        }
    }

    /// Number of architectural vector registers usable at this tier.
    pub const fn register_count(self) -> usize {
        match self {
            IsaLevel::Scalar | IsaLevel::Sse128 | IsaLevel::Avx2 => 16,
            IsaLevel::Avx512 => 32,
        }
    }

    /// Human-readable name.
    pub const fn name(self) -> &'static str {
        match self {
            IsaLevel::Scalar => "scalar",
            IsaLevel::Sse128 => "sse128",
            IsaLevel::Avx2 => "avx2",
            IsaLevel::Avx512 => "avx512",
        }
    }
}

impl fmt::Display for IsaLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The SIMD-related CPU features relevant to JITSPMM code generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuFeatures {
    /// AVX (256-bit VEX encodings).
    pub avx: bool,
    /// AVX2.
    pub avx2: bool,
    /// Fused multiply-add (FMA3).
    pub fma: bool,
    /// AVX-512 Foundation.
    pub avx512f: bool,
    /// AVX-512 DQ (needed for 512-bit `vxorps`).
    pub avx512dq: bool,
    /// AVX-512 VL (128/256-bit EVEX forms).
    pub avx512vl: bool,
}

impl CpuFeatures {
    /// Detect the features of the host CPU.
    pub fn detect() -> CpuFeatures {
        #[cfg(target_arch = "x86_64")]
        {
            CpuFeatures {
                avx: std::arch::is_x86_feature_detected!("avx"),
                avx2: std::arch::is_x86_feature_detected!("avx2"),
                fma: std::arch::is_x86_feature_detected!("fma"),
                avx512f: std::arch::is_x86_feature_detected!("avx512f"),
                avx512dq: std::arch::is_x86_feature_detected!("avx512dq"),
                avx512vl: std::arch::is_x86_feature_detected!("avx512vl"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            CpuFeatures::none()
        }
    }

    /// A feature set with everything disabled (scalar only).
    pub const fn none() -> CpuFeatures {
        CpuFeatures {
            avx: false,
            avx2: false,
            fma: false,
            avx512f: false,
            avx512dq: false,
            avx512vl: false,
        }
    }

    /// A feature set describing a full AVX-512 machine (the paper's Xeon
    /// Gold 6126 testbed).
    pub const fn full_avx512() -> CpuFeatures {
        CpuFeatures {
            avx: true,
            avx2: true,
            fma: true,
            avx512f: true,
            avx512dq: true,
            avx512vl: true,
        }
    }

    /// The highest [`IsaLevel`] these features can execute.
    pub fn best_isa(&self) -> IsaLevel {
        if self.avx512f {
            IsaLevel::Avx512
        } else if self.avx2 && self.fma {
            IsaLevel::Avx2
        } else if self.avx {
            IsaLevel::Sse128
        } else {
            IsaLevel::Scalar
        }
    }

    /// Whether code generated for `isa` can run with these features.
    pub fn supports(&self, isa: IsaLevel) -> bool {
        isa <= self.best_isa()
    }

    /// Whether packed FMA instructions are available (required by the
    /// [`IsaLevel::Avx2`] and higher tiers of the generated kernels).
    pub fn has_fma(&self) -> bool {
        self.fma || self.avx512f
    }
}

impl Default for CpuFeatures {
    fn default() -> Self {
        CpuFeatures::detect()
    }
}

impl fmt::Display for CpuFeatures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "avx={} avx2={} fma={} avx512f={} avx512dq={} avx512vl={}",
            self.avx, self.avx2, self.fma, self.avx512f, self.avx512dq, self.avx512vl
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_levels_are_ordered() {
        assert!(IsaLevel::Scalar < IsaLevel::Sse128);
        assert!(IsaLevel::Sse128 < IsaLevel::Avx2);
        assert!(IsaLevel::Avx2 < IsaLevel::Avx512);
    }

    #[test]
    fn lane_counts() {
        assert_eq!(IsaLevel::Avx512.max_f32_lanes(), 16);
        assert_eq!(IsaLevel::Avx2.max_f32_lanes(), 8);
        assert_eq!(IsaLevel::Sse128.max_f32_lanes(), 4);
        assert_eq!(IsaLevel::Scalar.max_f32_lanes(), 1);
        assert_eq!(IsaLevel::Avx512.max_f64_lanes(), 8);
    }

    #[test]
    fn best_isa_selection() {
        assert_eq!(CpuFeatures::none().best_isa(), IsaLevel::Scalar);
        assert_eq!(CpuFeatures::full_avx512().best_isa(), IsaLevel::Avx512);
        let avx2_only = CpuFeatures { avx: true, avx2: true, fma: true, ..CpuFeatures::none() };
        assert_eq!(avx2_only.best_isa(), IsaLevel::Avx2);
        let avx_only = CpuFeatures { avx: true, ..CpuFeatures::none() };
        assert_eq!(avx_only.best_isa(), IsaLevel::Sse128);
    }

    #[test]
    fn supports_is_monotone() {
        let feats = CpuFeatures::full_avx512();
        for isa in IsaLevel::ALL {
            assert!(feats.supports(isa));
        }
        assert!(!CpuFeatures::none().supports(IsaLevel::Avx2));
    }

    #[test]
    fn detect_does_not_panic() {
        let feats = CpuFeatures::detect();
        let _ = feats.best_isa();
        assert!(!feats.to_string().is_empty());
    }
}
