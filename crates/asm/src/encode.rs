//! Low-level x86-64 encoding helpers: REX prefixes, ModRM/SIB bytes, and the
//! VEX/EVEX prefix forms used by AVX/AVX-512 instructions.
//!
//! These helpers are shared by every instruction-emitting method of
//! [`crate::Assembler`]. They deliberately support only the addressing forms
//! the JITSPMM code generator needs (register direct, and `[base + index *
//! scale + disp]` memory operands); RIP-relative and absolute addressing are
//! not encodable through this module.

use crate::buffer::CodeBuffer;
use crate::mem::Mem;

/// The opcode map selector shared by VEX (`mmmmm`) and EVEX (`mmm`) prefixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpMap {
    /// The `0F` escape map.
    M0F = 1,
    /// The `0F 38` escape map.
    M0F38 = 2,
    /// The `0F 3A` escape map.
    #[allow(dead_code)]
    M0F3A = 3,
}

/// The mandatory-prefix selector shared by VEX and EVEX (`pp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pp {
    /// No mandatory prefix.
    None = 0,
    /// `66` prefix.
    P66 = 1,
    /// `F3` prefix.
    PF3 = 2,
    /// `F2` prefix.
    PF2 = 3,
}

/// Vector length field for VEX (`L`) / EVEX (`L'L`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Vl {
    /// 128-bit.
    L128 = 0,
    /// 256-bit.
    L256 = 1,
    /// 512-bit (EVEX only).
    L512 = 2,
}

/// A ModRM `r/m` operand: either a direct register or a memory reference.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RegMem {
    /// Direct register, identified by its full hardware id (0–31 for SIMD,
    /// 0–15 for GPRs).
    Reg(u8),
    /// Memory operand.
    Mem(Mem),
}

impl RegMem {
    /// Bit 3 of the value that lands in the `B` prefix extension
    /// (register id, or memory base register).
    fn b_bit(&self) -> u8 {
        match self {
            RegMem::Reg(r) => (r >> 3) & 1,
            RegMem::Mem(m) => (m.base_reg().id() >> 3) & 1,
        }
    }

    /// Bit 3 of the value that lands in the `X` prefix extension
    /// (memory index register; for EVEX register operands this is bit 4 of
    /// the register id).
    fn x_bit_mem(&self) -> u8 {
        match self {
            RegMem::Reg(_) => 0,
            RegMem::Mem(m) => m.index_reg().map(|(r, _)| (r.id() >> 3) & 1).unwrap_or(0),
        }
    }

    /// The EVEX `X` bit: bit 4 of a direct register, or the index-register
    /// extension for memory operands.
    fn x_bit_evex(&self) -> u8 {
        match self {
            RegMem::Reg(r) => (r >> 4) & 1,
            RegMem::Mem(_) => self.x_bit_mem(),
        }
    }
}

/// Emit the ModRM byte, optional SIB byte and displacement for `rm`, with
/// `reg_field` (already reduced to 3 bits) in the ModRM `reg` slot.
///
/// `avoid_disp8` forces `disp32` instead of `disp8` for non-zero
/// displacements; EVEX-encoded instructions use it because their 8-bit
/// displacements are scaled by the instruction's tuple size (disp8*N), which
/// this assembler does not model.
pub(crate) fn emit_modrm_sib(buf: &mut CodeBuffer, reg_field: u8, rm: &RegMem, avoid_disp8: bool) {
    debug_assert!(reg_field < 8);
    match rm {
        RegMem::Reg(r) => {
            buf.push_u8(0b11 << 6 | reg_field << 3 | (r & 0b111));
        }
        RegMem::Mem(m) => {
            let base = m.base_reg();
            let disp = m.displacement();
            let base_low = base.low3();
            // rbp/r13 as base cannot be encoded with mod == 00 (that form
            // means disp32-only / RIP-relative), so force a displacement.
            let needs_disp = disp != 0 || base_low == 0b101;
            let (modbits, disp_width) = if !needs_disp {
                (0b00, 0)
            } else if !avoid_disp8 && (-128..=127).contains(&disp) {
                (0b01, 1)
            } else if avoid_disp8 && disp == 0 {
                // Forced displacement for rbp/r13 under EVEX: a single zero
                // byte is still a plain (unscaled) encoding hazard, so use
                // disp32 to stay tuple-size agnostic.
                (0b10, 4)
            } else {
                (0b10, 4)
            };
            match m.index_reg() {
                None if base_low != 0b100 => {
                    buf.push_u8(modbits << 6 | reg_field << 3 | base_low);
                }
                index => {
                    // SIB form: either an index register is present or the
                    // base is rsp/r12 (whose low bits collide with the SIB
                    // escape).
                    buf.push_u8(modbits << 6 | reg_field << 3 | 0b100);
                    let (index_low, scale_bits) = match index {
                        Some((idx, scale)) => (idx.low3(), scale.bits()),
                        None => (0b100, 0),
                    };
                    buf.push_u8(scale_bits << 6 | index_low << 3 | base_low);
                }
            }
            match disp_width {
                0 => {}
                1 => buf.push_u8(disp as i8 as u8),
                4 => buf.push_i32(disp),
                _ => unreachable!(),
            }
        }
    }
}

/// Emit a legacy-encoded (optionally REX-prefixed) instruction.
///
/// * `prefixes` — raw legacy prefixes emitted first (`66`, `F2`, `F3`, `F0`).
/// * `rex_w` — set the REX.W bit (64-bit operand size).
/// * `opcode` — opcode bytes including any `0F` escapes.
/// * `reg_field` — the full register id (or opcode extension digit) destined
///   for ModRM.reg.
/// * `rm` — the ModRM r/m operand.
pub(crate) fn emit_legacy(
    buf: &mut CodeBuffer,
    prefixes: &[u8],
    rex_w: bool,
    opcode: &[u8],
    reg_field: u8,
    rm: &RegMem,
) {
    for p in prefixes {
        buf.push_u8(*p);
    }
    let r = (reg_field >> 3) & 1;
    let b = rm.b_bit();
    let x = rm.x_bit_mem();
    let w = rex_w as u8;
    if w | r | x | b != 0 {
        buf.push_u8(0x40 | w << 3 | r << 2 | x << 1 | b);
    }
    buf.extend(opcode);
    emit_modrm_sib(buf, reg_field & 0b111, rm, false);
}

/// Emit a legacy instruction that encodes its only register operand in the
/// low bits of the opcode (`push r64`, `pop r64`, `mov r64, imm64`, ...).
pub(crate) fn emit_legacy_opreg(buf: &mut CodeBuffer, rex_w: bool, opcode_base: u8, reg: u8) {
    let b = (reg >> 3) & 1;
    let w = rex_w as u8;
    if w | b != 0 {
        buf.push_u8(0x40 | w << 3 | b);
    }
    buf.push_u8(opcode_base + (reg & 0b111));
}

/// Emit a VEX-encoded instruction (three-byte `C4` form).
///
/// * `reg` — modrm.reg register id (0–15).
/// * `vvvv` — the non-destructive source register id (0–15); pass 0 when the
///   instruction does not use `vvvv` (the field is then encoded as `1111`).
pub(crate) fn emit_vex(
    buf: &mut CodeBuffer,
    map: OpMap,
    pp: Pp,
    vl: Vl,
    w: bool,
    opcode: u8,
    reg: u8,
    vvvv: u8,
    rm: &RegMem,
) {
    debug_assert!(reg < 16 && vvvv < 16, "VEX encoding only reaches registers 0-15");
    debug_assert!(vl != Vl::L512, "512-bit operands require EVEX");
    let r = (reg >> 3) & 1;
    let b = rm.b_bit();
    let x = rm.x_bit_mem();
    buf.push_u8(0xC4);
    buf.push_u8(((!r & 1) << 7) | ((!x & 1) << 6) | ((!b & 1) << 5) | map as u8);
    let l = (vl as u8) & 1;
    buf.push_u8(((w as u8) << 7) | ((!vvvv & 0xF) << 3) | (l << 2) | pp as u8);
    buf.push_u8(opcode);
    emit_modrm_sib(buf, reg & 0b111, rm, false);
}

/// Emit an EVEX-encoded instruction.
///
/// No masking, zeroing, broadcast or rounding-control bits are exposed; the
/// JITSPMM kernels do not use them. Displacements are always emitted in the
/// 32-bit form so that the disp8*N compression rules never apply.
pub(crate) fn emit_evex(
    buf: &mut CodeBuffer,
    map: OpMap,
    pp: Pp,
    vl: Vl,
    w: bool,
    opcode: u8,
    reg: u8,
    vvvv: u8,
    rm: &RegMem,
) {
    debug_assert!(reg < 32 && vvvv < 32);
    let r = (reg >> 3) & 1;
    let r_hi = (reg >> 4) & 1;
    let b = rm.b_bit();
    let x = rm.x_bit_evex();
    let v_lo = vvvv & 0xF;
    let v_hi = (vvvv >> 4) & 1;
    buf.push_u8(0x62);
    // P0: [R̄ X̄ B̄ R̄' 0 m m m]
    buf.push_u8(
        ((!r & 1) << 7) | ((!x & 1) << 6) | ((!b & 1) << 5) | ((!r_hi & 1) << 4) | map as u8,
    );
    // P1: [W v̄ v̄ v̄ v̄ 1 p p]
    buf.push_u8(((w as u8) << 7) | ((!v_lo & 0xF) << 3) | 0b100 | pp as u8);
    // P2: [z L' L b V̄' a a a]
    buf.push_u8(((vl as u8) << 5) | ((!v_hi & 1) << 3));
    buf.push_u8(opcode);
    emit_modrm_sib(buf, reg & 0b111, rm, true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Gpr;
    use crate::Scale;

    fn bytes(f: impl FnOnce(&mut CodeBuffer)) -> Vec<u8> {
        let mut b = CodeBuffer::new();
        f(&mut b);
        b.into_bytes()
    }

    #[test]
    fn modrm_register_direct() {
        // mod=11, reg=2, rm=3
        let b = bytes(|b| emit_modrm_sib(b, 2, &RegMem::Reg(3), false));
        assert_eq!(b, vec![0xD3]);
    }

    #[test]
    fn modrm_base_only_no_disp() {
        // [rax] => mod=00 rm=000
        let b = bytes(|b| emit_modrm_sib(b, 0, &RegMem::Mem(Mem::base(Gpr::Rax)), false));
        assert_eq!(b, vec![0x00]);
    }

    #[test]
    fn modrm_rbp_base_needs_disp() {
        // [rbp] must become [rbp + 0] (disp8 = 0).
        let b = bytes(|b| emit_modrm_sib(b, 0, &RegMem::Mem(Mem::base(Gpr::Rbp)), false));
        assert_eq!(b, vec![0x45, 0x00]);
    }

    #[test]
    fn modrm_r13_base_evex_uses_disp32() {
        let b = bytes(|b| emit_modrm_sib(b, 0, &RegMem::Mem(Mem::base(Gpr::R13)), true));
        assert_eq!(b, vec![0x85, 0x00, 0x00, 0x00, 0x00]);
    }

    #[test]
    fn modrm_rsp_base_needs_sib() {
        // [rsp] => mod=00 rm=100, SIB base=100 index=100 (none).
        let b = bytes(|b| emit_modrm_sib(b, 1, &RegMem::Mem(Mem::base(Gpr::Rsp)), false));
        assert_eq!(b, vec![0x0C, 0x24]);
    }

    #[test]
    fn modrm_base_index_scale_disp8() {
        // [rax + rcx*4 + 0x10]
        let m = Mem::base(Gpr::Rax).index(Gpr::Rcx, Scale::S4).disp(0x10);
        let b = bytes(|b| emit_modrm_sib(b, 0, &RegMem::Mem(m), false));
        assert_eq!(b, vec![0x44, 0x88, 0x10]);
    }

    #[test]
    fn modrm_disp32_when_large() {
        let m = Mem::base(Gpr::Rax).disp(0x1000);
        let b = bytes(|b| emit_modrm_sib(b, 0, &RegMem::Mem(m), false));
        assert_eq!(b, vec![0x80, 0x00, 0x10, 0x00, 0x00]);
    }

    #[test]
    fn legacy_add_rax_rdi() {
        // add rax, rdi => REX.W 01 F8 (add r/m64, r64 with rm=rax, reg=rdi)
        let b = bytes(|b| emit_legacy(b, &[], true, &[0x01], Gpr::Rdi.id(), &RegMem::Reg(0)));
        assert_eq!(b, vec![0x48, 0x01, 0xF8]);
    }

    #[test]
    fn legacy_extended_registers_set_rex_bits() {
        // mov r15, r8 => REX.W|R|B 89 C7? Let's check: mov r/m64, r64 (89 /r),
        // rm=r15 (B), reg=r8 (R) => REX=0x4D, modrm=11 000 111 = 0xC7.
        let b = bytes(|b| {
            emit_legacy(b, &[], true, &[0x89], Gpr::R8.id(), &RegMem::Reg(Gpr::R15.id()))
        });
        assert_eq!(b, vec![0x4D, 0x89, 0xC7]);
    }

    #[test]
    fn opreg_push_r12() {
        // push r12 => 41 54
        let b = bytes(|b| emit_legacy_opreg(b, false, 0x50, Gpr::R12.id()));
        assert_eq!(b, vec![0x41, 0x54]);
    }

    #[test]
    fn vex_vxorps_xmm1_xmm2_xmm3() {
        // vxorps xmm1, xmm2, xmm3 => C4 E1 68 57 CB  (3-byte VEX form)
        let b = bytes(|b| {
            emit_vex(b, OpMap::M0F, Pp::None, Vl::L128, false, 0x57, 1, 2, &RegMem::Reg(3))
        });
        assert_eq!(b, vec![0xC4, 0xE1, 0x68, 0x57, 0xCB]);
    }

    #[test]
    fn evex_prefix_shape() {
        // vfmadd231ps zmm0, zmm31, [rax] => 62 F2 05 40 B8 00
        let b = bytes(|b| {
            emit_evex(
                b,
                OpMap::M0F38,
                Pp::P66,
                Vl::L512,
                false,
                0xB8,
                0,
                31,
                &RegMem::Mem(Mem::base(Gpr::Rax)),
            )
        });
        assert_eq!(b, vec![0x62, 0xF2, 0x05, 0x40, 0xB8, 0x00]);
    }

    #[test]
    fn evex_high_register_in_rm() {
        // vmovups zmm20, [rax]: reg=20 needs R and R' handling.
        let b = bytes(|b| {
            emit_evex(
                b,
                OpMap::M0F,
                Pp::None,
                Vl::L512,
                false,
                0x10,
                20,
                0,
                &RegMem::Mem(Mem::base(Gpr::Rax)),
            )
        });
        // P0: R̄=0 (reg bit3 = 0? reg=20 = 0b10100 -> bit3=0 so R̄=1)... verified
        // against a hand-worked encoding: 62 61 7C 48 10 20? We assert the
        // structural invariants instead of a full golden byte string here;
        // semantic correctness is covered by the hardware execution tests.
        assert_eq!(b[0], 0x62);
        assert_eq!(b.len(), 6);
        // P2 vector length bits must say 512.
        assert_eq!((b[3] >> 5) & 0b11, 0b10);
    }
}
