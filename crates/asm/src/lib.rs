//! # jitspmm-asm — a from-scratch x86-64 runtime assembler
//!
//! This crate provides the machine-code emission substrate used by the
//! [JITSPMM](https://arxiv.org/abs/2312.05639) reproduction. The paper relies
//! on the C++ AsmJit library to generate x86-64 instructions at runtime; this
//! crate plays the same role in pure Rust:
//!
//! * register definitions for the general-purpose and SIMD register files
//!   ([`Gpr`], [`Xmm`], [`Ymm`], [`Zmm`]),
//! * memory-operand construction ([`Mem`]),
//! * legacy/REX, VEX and EVEX instruction encoding ([`Assembler`]),
//! * forward/backward label management with relocation fixups ([`Label`]),
//! * executable-memory management with W^X protection ([`ExecutableBuffer`]),
//! * CPU feature detection ([`CpuFeatures`], [`IsaLevel`]).
//!
//! The instruction surface is the subset needed by the JITSPMM kernels
//! (scalar and packed FMA, broadcasts, unaligned moves, the `lock xadd`
//! dynamic-dispatch primitive, and the usual control-flow/ALU instructions),
//! plus enough extra breadth to be generally useful.
//!
//! # Example
//!
//! ```
//! use jitspmm_asm::{Assembler, Gpr, ExecutableBuffer};
//!
//! # fn main() -> Result<(), jitspmm_asm::AsmError> {
//! let mut asm = Assembler::new();
//! // fn(x: u64) -> u64 { x + 7 }
//! asm.mov_rr64(Gpr::Rax, Gpr::Rdi);
//! asm.add_ri64(Gpr::Rax, 7);
//! asm.ret();
//! let buf = ExecutableBuffer::from_code(&asm.finalize()?)?;
//! let f: extern "C" fn(u64) -> u64 = unsafe { buf.as_fn1() };
//! assert_eq!(f(35), 42);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![allow(clippy::too_many_arguments)]

mod assembler;
mod buffer;
mod cond;
mod cpu;
mod encode;
mod error;
mod exec;
mod label;
mod mem;
mod reg;

pub use assembler::Assembler;
pub use buffer::CodeBuffer;
pub use cond::Cond;
pub use cpu::{CpuFeatures, IsaLevel};
pub use error::AsmError;
pub use exec::{ExecutableBuffer, WritableBuffer};
pub use label::Label;
pub use mem::{Mem, Scale};
pub use reg::{Gpr, VecReg, VecWidth, Xmm, Ymm, Zmm};
