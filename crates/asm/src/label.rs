//! Labels and relocation fixups for forward/backward jumps.

/// A position in the code stream that jumps can target before or after it is
/// known.
///
/// Labels are created with [`crate::Assembler::new_label`], bound to the
/// current position with [`crate::Assembler::bind`], and referenced by the
/// jump-emitting methods. All references are resolved by
/// [`crate::Assembler::finalize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) usize);

impl Label {
    /// The label's index within its assembler.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The kind of patch a fixup performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FixupKind {
    /// A 32-bit displacement relative to the end of the instruction.
    Rel32,
}

/// A pending patch recorded when a jump to an unbound (or bound) label is
/// emitted.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fixup {
    /// Offset of the displacement field within the code buffer.
    pub at: usize,
    /// Offset of the end of the instruction (the base the displacement is
    /// relative to).
    pub next_inst: usize,
    /// Target label.
    pub label: Label,
    /// Patch kind.
    pub kind: FixupKind,
}
