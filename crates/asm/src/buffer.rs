//! Growable machine-code buffer.

/// A growable byte buffer holding machine code under construction.
///
/// [`crate::Assembler`] appends encoded instructions here; the buffer also
/// supports patching previously emitted bytes, which label fixups use.
#[derive(Debug, Default, Clone)]
pub struct CodeBuffer {
    bytes: Vec<u8>,
}

impl CodeBuffer {
    /// Create an empty buffer.
    pub fn new() -> CodeBuffer {
        CodeBuffer { bytes: Vec::new() }
    }

    /// Create an empty buffer with `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> CodeBuffer {
        CodeBuffer { bytes: Vec::with_capacity(capacity) }
    }

    /// Current length in bytes (== the offset of the next emitted byte).
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether no bytes have been emitted yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Append a single byte.
    #[inline]
    pub fn push_u8(&mut self, b: u8) {
        self.bytes.push(b);
    }

    /// Append a little-endian 16-bit value.
    #[inline]
    pub fn push_u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian 32-bit value.
    #[inline]
    pub fn push_u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian 64-bit value.
    #[inline]
    pub fn push_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a signed 32-bit value (little-endian).
    #[inline]
    pub fn push_i32(&mut self, v: i32) {
        self.push_u32(v as u32);
    }

    /// Append raw bytes.
    #[inline]
    pub fn extend(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    /// Overwrite four bytes at `offset` with a little-endian 32-bit value.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 4` exceeds the buffer length.
    pub fn patch_u32(&mut self, offset: usize, v: u32) {
        self.bytes[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read back four bytes at `offset` as a little-endian 32-bit value.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 4` exceeds the buffer length.
    pub fn read_u32(&self, offset: usize) -> u32 {
        u32::from_le_bytes(self.bytes[offset..offset + 4].try_into().unwrap())
    }

    /// A view of the emitted bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume the buffer and return the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

impl AsRef<[u8]> for CodeBuffer {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl From<CodeBuffer> for Vec<u8> {
    fn from(buf: CodeBuffer) -> Vec<u8> {
        buf.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_widths_are_little_endian() {
        let mut b = CodeBuffer::new();
        b.push_u8(0xAA);
        b.push_u16(0x1122);
        b.push_u32(0x33445566);
        b.push_u64(0x778899AABBCCDDEE);
        assert_eq!(
            b.as_slice(),
            &[
                0xAA, 0x22, 0x11, 0x66, 0x55, 0x44, 0x33, 0xEE, 0xDD, 0xCC, 0xBB, 0xAA, 0x99, 0x88,
                0x77
            ]
        );
    }

    #[test]
    fn patch_round_trips() {
        let mut b = CodeBuffer::with_capacity(16);
        b.push_u32(0);
        b.push_u8(0xC3);
        b.patch_u32(0, 0xDEADBEEF);
        assert_eq!(b.read_u32(0), 0xDEADBEEF);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn negative_i32_encoding() {
        let mut b = CodeBuffer::new();
        b.push_i32(-1);
        assert_eq!(b.as_slice(), &[0xFF, 0xFF, 0xFF, 0xFF]);
    }
}
