//! Hardware-execution tests for the SIMD encodings.
//!
//! These tests are the strongest available oracle for the VEX/EVEX encoder:
//! they emit small kernels that use the same instructions as the JITSPMM code
//! generator (`vxorps`, `vbroadcastss`, `vfmadd231ps/ss`, `vmovups`,
//! `vmovss`, ...), run them on the host CPU, and compare the results against
//! plain Rust arithmetic. Wrong prefix bits, ModRM forms, or displacement
//! encodings would either fault or produce wrong numbers.
//!
//! Tests that need AVX2/FMA or AVX-512 skip themselves on hosts without
//! those features.

use jitspmm_asm::{Assembler, CpuFeatures, ExecutableBuffer, Gpr, Mem, Scale, VecReg, Xmm};

fn run_kernel(asm: Assembler) -> ExecutableBuffer {
    ExecutableBuffer::from_code(&asm.finalize().expect("finalize")).expect("exec alloc")
}

fn features() -> CpuFeatures {
    CpuFeatures::detect()
}

/// dst[0..4] = a[0..4] (xmm load + store round trip).
#[test]
fn vmovups_xmm_round_trip() {
    if !features().avx {
        eprintln!("skipping: no AVX");
        return;
    }
    let mut asm = Assembler::new();
    asm.vmovups_load(VecReg::xmm(0), Mem::base(Gpr::Rdi));
    asm.vmovups_store(Mem::base(Gpr::Rsi), VecReg::xmm(0));
    asm.ret();
    let buf = run_kernel(asm);
    let f: extern "C" fn(*const f32, *mut f32) = unsafe { buf.as_fn2() };
    let src = [1.0f32, -2.5, 3.25, 4.0];
    let mut dst = [0.0f32; 4];
    f(src.as_ptr(), dst.as_mut_ptr());
    assert_eq!(src, dst);
}

/// Scalar FMA: y[0] += a * x[0] using vfmadd231ss.
#[test]
fn vfmadd231ss_matches_scalar_math() {
    if !features().has_fma() {
        eprintln!("skipping: no FMA");
        return;
    }
    // fn(acc_ptr, a_ptr, x_ptr): acc[0] += a[0] * x[0]
    let mut asm = Assembler::new();
    asm.vmovss_load(Xmm::new(0), Mem::base(Gpr::Rdi));
    asm.vmovss_load(Xmm::new(1), Mem::base(Gpr::Rsi));
    asm.vfmadd231ss_m(Xmm::new(0), Xmm::new(1), Mem::base(Gpr::Rdx));
    asm.vmovss_store(Mem::base(Gpr::Rdi), Xmm::new(0));
    asm.ret();
    let buf = run_kernel(asm);
    let f: extern "C" fn(*mut f32, *const f32, *const f32) = unsafe { buf.as_fn3() };
    let mut acc = [10.0f32];
    let a = [3.0f32];
    let x = [7.0f32];
    f(acc.as_mut_ptr(), a.as_ptr(), x.as_ptr());
    assert_eq!(acc[0], 10.0 + 3.0 * 7.0);
}

/// Packed 256-bit FMA with a broadcast multiplier, mirroring one CCM step.
#[test]
fn vfmadd231ps_ymm_with_broadcast() {
    let feats = features();
    if !(feats.avx2 && feats.fma) {
        eprintln!("skipping: no AVX2+FMA");
        return;
    }
    // fn(y_ptr, aval_ptr, x_ptr): y[0..8] += broadcast(aval) * x[0..8]
    let mut asm = Assembler::new();
    asm.vmovups_load(VecReg::ymm(2), Mem::base(Gpr::Rdi));
    asm.vbroadcastss(VecReg::ymm(7), Mem::base(Gpr::Rsi));
    asm.vfmadd231ps_m(VecReg::ymm(2), VecReg::ymm(7), Mem::base(Gpr::Rdx));
    asm.vmovups_store(Mem::base(Gpr::Rdi), VecReg::ymm(2));
    asm.vzeroupper();
    asm.ret();
    let buf = run_kernel(asm);
    let f: extern "C" fn(*mut f32, *const f32, *const f32) = unsafe { buf.as_fn3() };
    let mut y: Vec<f32> = (0..8).map(|i| i as f32).collect();
    let a = [2.5f32];
    let x: Vec<f32> = (0..8).map(|i| (i as f32) * 0.5).collect();
    f(y.as_mut_ptr(), a.as_ptr(), x.as_ptr());
    for (i, &v) in y.iter().enumerate() {
        assert_eq!(v, i as f32 + 2.5 * (i as f32) * 0.5, "lane {i}");
    }
}

/// Packed 512-bit FMA using zmm31 as the broadcast register, exactly as in
/// Listing 2 of the paper, including a non-zero displacement and an indexed
/// address.
#[test]
fn vfmadd231ps_zmm31_listing2_shape() {
    let feats = features();
    if !feats.avx512f {
        eprintln!("skipping: no AVX-512F");
        return;
    }
    // fn(y_ptr, aval_ptr, x_ptr):
    //   zmm0 = 0
    //   zmm0 += broadcast(aval[1]) * x[16..32]   (disp = 64 bytes, index form)
    //   y[0..16] = zmm0
    let mut asm = Assembler::new();
    let zero = VecReg::zmm(0);
    if feats.avx512dq {
        asm.vxorps(zero, zero, zero);
    } else {
        asm.vpxord(zero, zero, zero);
    }
    asm.mov_ri64(Gpr::Rcx, 4); // element index 4 within aval
    asm.vbroadcastss(VecReg::zmm(31), Mem::base(Gpr::Rsi).index(Gpr::Rcx, Scale::S4).disp(-12));
    asm.vfmadd231ps_m(zero, VecReg::zmm(31), Mem::base(Gpr::Rdx).disp(64));
    asm.vmovups_store(Mem::base(Gpr::Rdi), zero);
    asm.ret();
    let buf = run_kernel(asm);
    let f: extern "C" fn(*mut f32, *const f32, *const f32) = unsafe { buf.as_fn3() };
    let mut y = [0.0f32; 16];
    let a = [0.0f32, 3.0, 0.0, 0.0, 0.0]; // broadcast picks a[4*4-12 bytes] = a[1] = 3.0
    let x: Vec<f32> = (0..32).map(|i| i as f32).collect();
    f(y.as_mut_ptr(), a.as_ptr(), x.as_ptr());
    for (i, &v) in y.iter().enumerate() {
        assert_eq!(v, 3.0 * (16 + i) as f32, "lane {i}");
    }
}

/// High EVEX registers (zmm16–zmm31) must round-trip through load/store.
#[test]
fn high_zmm_registers_round_trip() {
    if !features().avx512f {
        eprintln!("skipping: no AVX-512F");
        return;
    }
    let mut asm = Assembler::new();
    asm.vmovups_load(VecReg::zmm(20), Mem::base(Gpr::Rdi));
    asm.vmovups_store(Mem::base(Gpr::Rsi), VecReg::zmm(20));
    asm.ret();
    let buf = run_kernel(asm);
    let f: extern "C" fn(*const f32, *mut f32) = unsafe { buf.as_fn2() };
    let src: Vec<f32> = (0..16).map(|i| (i * i) as f32).collect();
    let mut dst = vec![0.0f32; 16];
    f(src.as_ptr(), dst.as_mut_ptr());
    assert_eq!(src, dst);
}

/// f64 scalar and packed paths.
#[test]
fn f64_paths_match_scalar_math() {
    let feats = features();
    if !(feats.avx2 && feats.fma) {
        eprintln!("skipping: no AVX2+FMA");
        return;
    }
    // fn(y_ptr, a_ptr, x_ptr): y[0..4] += broadcast(a) * x[0..4] (f64, ymm)
    let mut asm = Assembler::new();
    asm.vmovupd_load(VecReg::ymm(1), Mem::base(Gpr::Rdi));
    asm.vbroadcastsd(VecReg::ymm(5), Mem::base(Gpr::Rsi));
    asm.vfmadd231pd_m(VecReg::ymm(1), VecReg::ymm(5), Mem::base(Gpr::Rdx));
    asm.vmovupd_store(Mem::base(Gpr::Rdi), VecReg::ymm(1));
    asm.vzeroupper();
    asm.ret();
    let buf = run_kernel(asm);
    let f: extern "C" fn(*mut f64, *const f64, *const f64) = unsafe { buf.as_fn3() };
    let mut y = [1.0f64, 2.0, 3.0, 4.0];
    let a = [1.5f64];
    let x = [10.0f64, 20.0, 30.0, 40.0];
    f(y.as_mut_ptr(), a.as_ptr(), x.as_ptr());
    assert_eq!(y, [16.0, 32.0, 48.0, 64.0]);

    // Scalar f64 FMA.
    let mut asm = Assembler::new();
    asm.vmovsd_load(Xmm::new(0), Mem::base(Gpr::Rdi));
    asm.vmovsd_load(Xmm::new(1), Mem::base(Gpr::Rsi));
    asm.vfmadd231sd_m(Xmm::new(0), Xmm::new(1), Mem::base(Gpr::Rdx));
    asm.vmovsd_store(Mem::base(Gpr::Rdi), Xmm::new(0));
    asm.ret();
    let buf = run_kernel(asm);
    let f: extern "C" fn(*mut f64, *const f64, *const f64) = unsafe { buf.as_fn3() };
    let mut acc = [100.0f64];
    f(acc.as_mut_ptr(), [0.5f64].as_ptr(), [8.0f64].as_ptr());
    assert_eq!(acc[0], 104.0);
}

/// Non-FMA multiply/add fallback (vmulss + vaddss, vmulps + vaddps).
#[test]
fn mul_add_fallback_matches() {
    if !features().avx {
        eprintln!("skipping: no AVX");
        return;
    }
    // fn(acc_ptr, a_ptr, x_ptr): acc[0] = acc[0] + a[0]*x[0]
    let mut asm = Assembler::new();
    asm.vmovss_load(Xmm::new(0), Mem::base(Gpr::Rdi));
    asm.vmovss_load(Xmm::new(1), Mem::base(Gpr::Rsi));
    asm.vmulss_m(Xmm::new(1), Xmm::new(1), Mem::base(Gpr::Rdx));
    asm.vaddss_r(Xmm::new(0), Xmm::new(0), Xmm::new(1));
    asm.vmovss_store(Mem::base(Gpr::Rdi), Xmm::new(0));
    asm.ret();
    let buf = run_kernel(asm);
    let f: extern "C" fn(*mut f32, *const f32, *const f32) = unsafe { buf.as_fn3() };
    let mut acc = [1.0f32];
    f(acc.as_mut_ptr(), [6.0f32].as_ptr(), [7.0f32].as_ptr());
    assert_eq!(acc[0], 43.0);
}

/// The dynamic-row-dispatch primitive: `lock xadd` returns the old value and
/// bumps the shared counter.
#[test]
fn lock_xadd_fetch_add_semantics() {
    // fn(next_ptr, batch) -> old value
    let mut asm = Assembler::new();
    asm.mov_rr64(Gpr::Rax, Gpr::Rsi);
    asm.lock_xadd_mr64(Mem::base(Gpr::Rdi), Gpr::Rax);
    asm.ret();
    let buf = run_kernel(asm);
    let f: extern "C" fn(*mut u64, u64) -> u64 = unsafe { buf.as_fn2() };
    let mut next = 0u64;
    assert_eq!(f(&mut next, 128), 0);
    assert_eq!(f(&mut next, 128), 128);
    assert_eq!(f(&mut next, 64), 256);
    assert_eq!(next, 320);
}

/// A small but complete scalar dot-product loop exercising labels, cmp/jge,
/// indexed addressing with scale 4, and inc.
#[test]
fn scalar_dot_product_loop() {
    if !features().has_fma() {
        eprintln!("skipping: no FMA");
        return;
    }
    // fn(a_ptr, b_ptr, n, out_ptr)  — System V: rdi, rsi, rdx, rcx
    let mut asm = Assembler::new();
    let (head, done) = {
        let mut a = || asm.new_label();
        (a(), a())
    };
    let acc = Xmm::new(0);
    asm.vxorps(VecReg::from(acc), VecReg::from(acc), VecReg::from(acc));
    asm.xor_rr64(Gpr::Rax, Gpr::Rax);
    asm.bind(head).unwrap();
    asm.cmp_rr64(Gpr::Rax, Gpr::Rdx);
    asm.jcc(jitspmm_asm::Cond::Ge, done);
    asm.vmovss_load(Xmm::new(1), Mem::base(Gpr::Rdi).index(Gpr::Rax, Scale::S4));
    asm.vfmadd231ss_m(acc, Xmm::new(1), Mem::base(Gpr::Rsi).index(Gpr::Rax, Scale::S4));
    asm.inc_r64(Gpr::Rax);
    asm.jmp(head);
    asm.bind(done).unwrap();
    asm.vmovss_store(Mem::base(Gpr::Rcx), acc);
    asm.ret();
    let buf = run_kernel(asm);
    let f: extern "C" fn(*const f32, *const f32, u64, *mut f32) =
        unsafe { std::mem::transmute(buf.entry()) };
    let a: Vec<f32> = (0..64).map(|i| i as f32).collect();
    let b: Vec<f32> = (0..64).map(|i| (i % 7) as f32).collect();
    let mut out = [0.0f32];
    f(a.as_ptr(), b.as_ptr(), 64, out.as_mut_ptr());
    let expected: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
    assert_eq!(out[0], expected);
}
