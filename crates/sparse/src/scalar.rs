//! The element trait shared by the sparse/dense containers and the JIT code
//! generator.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// Which machine value type a [`Scalar`] maps to.
///
/// The JIT code generator selects instruction variants (`...ps`/`...ss`
/// versus `...pd`/`...sd`) and lane widths from this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarKind {
    /// 32-bit IEEE-754 single precision.
    F32,
    /// 64-bit IEEE-754 double precision.
    F64,
}

impl ScalarKind {
    /// Size of one element in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            ScalarKind::F32 => 4,
            ScalarKind::F64 => 8,
        }
    }

    /// Lanes per 512-bit register.
    pub const fn lanes_512(self) -> usize {
        64 / self.bytes()
    }
}

/// Floating-point element type usable by every layer of the reproduction
/// (containers, baselines, JIT kernels and the emulator).
///
/// Implemented for `f32` and `f64`. The trait is sealed in spirit: the JIT
/// code generator only understands these two kinds, so implementing it for
/// other types would not produce runnable kernels.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + MulAssign
    + Sum
    + 'static
{
    /// The machine kind of this scalar.
    const KIND: ScalarKind;
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Lossy conversion from `f64` (used by generators and test fixtures).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (used for error metrics).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Fused or unfused `self + a * b` (reference semantics for kernels).
    fn mul_add(self, a: Self, b: Self) -> Self;
}

impl Scalar for f32 {
    const KIND: ScalarKind = ScalarKind::F32;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }

    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        a.mul_add(b, self)
    }
}

impl Scalar for f64 {
    const KIND: ScalarKind = ScalarKind::F64;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }

    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        a.mul_add(b, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_sizes() {
        assert_eq!(<f32 as Scalar>::KIND, ScalarKind::F32);
        assert_eq!(<f64 as Scalar>::KIND, ScalarKind::F64);
        assert_eq!(ScalarKind::F32.bytes(), 4);
        assert_eq!(ScalarKind::F64.bytes(), 8);
        assert_eq!(ScalarKind::F32.lanes_512(), 16);
        assert_eq!(ScalarKind::F64.lanes_512(), 8);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(f32::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(f64::from_f64(-2.25).to_f64(), -2.25);
    }

    #[test]
    fn mul_add_semantics() {
        assert_eq!(Scalar::mul_add(1.0f32, 2.0, 3.0), 7.0);
        assert_eq!(Scalar::mul_add(1.0f64, 2.0, 3.0), 7.0);
        assert_eq!(Scalar::abs(-4.0f32), 4.0);
    }
}
