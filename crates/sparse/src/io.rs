//! Matrix Market I/O.
//!
//! The SuiteSparse collection distributes matrices in the Matrix Market
//! coordinate format; this module reads and writes the `matrix coordinate
//! real/integer/pattern general/symmetric` subset, which covers every matrix
//! the paper uses.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// The value field declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MmField {
    Real,
    Integer,
    Pattern,
}

/// The symmetry declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MmSymmetry {
    General,
    Symmetric,
}

/// Read a Matrix Market file from any reader.
///
/// Supports `matrix coordinate {real, integer, pattern} {general, symmetric}`
/// headers; symmetric inputs are expanded to full storage and pattern inputs
/// receive a value of one for every entry.
///
/// # Errors
///
/// Returns [`SparseError::Parse`] for malformed content and
/// [`SparseError::Io`] for underlying reader failures.
pub fn read_matrix_market<T: Scalar, R: Read>(reader: R) -> Result<CsrMatrix<T>, SparseError> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    // Header line.
    let (line_no, header) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (i + 1, line);
                }
            }
            None => return Err(SparseError::Parse { line: 1, message: "empty file".into() }),
        }
    };
    let header_lower = header.to_ascii_lowercase();
    let tokens: Vec<&str> = header_lower.split_whitespace().collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(SparseError::Parse {
            line: line_no,
            message: format!("unrecognized header: {header}"),
        });
    }
    if tokens[2] != "coordinate" {
        return Err(SparseError::Parse {
            line: line_no,
            message: "only the coordinate format is supported".into(),
        });
    }
    let field = match tokens[3] {
        "real" => MmField::Real,
        "integer" => MmField::Integer,
        "pattern" => MmField::Pattern,
        other => {
            return Err(SparseError::Parse {
                line: line_no,
                message: format!("unsupported field type: {other}"),
            })
        }
    };
    let symmetry = match tokens[4] {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        other => {
            return Err(SparseError::Parse {
                line: line_no,
                message: format!("unsupported symmetry: {other}"),
            })
        }
    };

    // Size line (skipping comments).
    let (size_line_no, size_line) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                let trimmed = line.trim().to_string();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break (i + 1, trimmed);
            }
            None => {
                return Err(SparseError::Parse {
                    line: line_no,
                    message: "missing size line".into(),
                })
            }
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>().map_err(|_| SparseError::Parse {
                line: size_line_no,
                message: format!("invalid size token: {t}"),
            })
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: size_line_no,
            message: "size line must contain rows, columns and nnz".into(),
        });
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz * 2);
    let mut seen = 0usize;
    for (i, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse_coord = |tok: Option<&str>| -> Result<usize, SparseError> {
            tok.and_then(|t| t.parse::<usize>().ok()).ok_or_else(|| SparseError::Parse {
                line: i + 1,
                message: format!("invalid entry line: {trimmed}"),
            })
        };
        let r = parse_coord(parts.next())?;
        let c = parse_coord(parts.next())?;
        if r == 0 || c == 0 {
            return Err(SparseError::Parse {
                line: i + 1,
                message: "matrix market coordinates are 1-based".into(),
            });
        }
        let value = match field {
            MmField::Pattern => T::ONE,
            MmField::Real | MmField::Integer => {
                let tok = parts.next().ok_or_else(|| SparseError::Parse {
                    line: i + 1,
                    message: "missing value".into(),
                })?;
                let v: f64 = tok.parse().map_err(|_| SparseError::Parse {
                    line: i + 1,
                    message: format!("invalid value: {tok}"),
                })?;
                T::from_f64(v)
            }
        };
        coo.try_push(r - 1, c - 1, value)?;
        if symmetry == MmSymmetry::Symmetric && r != c {
            coo.try_push(c - 1, r - 1, value)?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse {
            line: size_line_no,
            message: format!("expected {nnz} entries but found {seen}"),
        });
    }
    Ok(coo.to_csr())
}

/// Read a Matrix Market file from disk.
///
/// # Errors
///
/// See [`read_matrix_market`].
pub fn read_matrix_market_file<T: Scalar, P: AsRef<Path>>(
    path: P,
) -> Result<CsrMatrix<T>, SparseError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Write `matrix` in `matrix coordinate real general` form.
///
/// # Errors
///
/// Returns [`SparseError::Io`] if the writer fails.
pub fn write_matrix_market<T: Scalar, W: Write>(
    matrix: &CsrMatrix<T>,
    mut writer: W,
) -> Result<(), SparseError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by jitspmm-sparse")?;
    writeln!(writer, "{} {} {}", matrix.nrows(), matrix.ncols(), matrix.nnz())?;
    for (r, c, v) in matrix.iter() {
        writeln!(writer, "{} {} {}", r + 1, c + 1, v)?;
    }
    Ok(())
}

/// Write `matrix` to a file in Matrix Market form.
///
/// # Errors
///
/// See [`write_matrix_market`].
pub fn write_matrix_market_file<T: Scalar, P: AsRef<Path>>(
    matrix: &CsrMatrix<T>,
    path: P,
) -> Result<(), SparseError> {
    write_matrix_market(matrix, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn parse_minimal_real_general() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 4 3\n\
                    1 1 2.5\n\
                    2 4 -1.0\n\
                    3 2 7\n";
        let m: CsrMatrix<f64> = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), Some(2.5));
        assert_eq!(m.get(1, 3), Some(-1.0));
        assert_eq!(m.get(2, 1), Some(7.0));
    }

    #[test]
    fn parse_pattern_symmetric() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 2\n\
                    2 1\n\
                    3 3\n";
        let m: CsrMatrix<f32> = read_matrix_market(text.as_bytes()).unwrap();
        // symmetric expansion adds (1, 2); diagonal (3,3) is not duplicated.
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), Some(1.0));
        assert_eq!(m.get(1, 0), Some(1.0));
        assert_eq!(m.get(2, 2), Some(1.0));
    }

    #[test]
    fn reject_malformed_inputs() {
        assert!(read_matrix_market::<f32, _>("".as_bytes()).is_err());
        assert!(read_matrix_market::<f32, _>(
            "%%MatrixMarket matrix array real general\n1 1\n1.0\n".as_bytes()
        )
        .is_err());
        let bad_count = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market::<f32, _>(bad_count.as_bytes()).is_err());
        let zero_based = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market::<f32, _>(zero_based.as_bytes()).is_err());
        let out_of_range = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market::<f32, _>(out_of_range.as_bytes()).is_err());
    }

    #[test]
    fn write_read_round_trip() {
        let m = generate::uniform::<f64>(40, 30, 200, 9);
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back: CsrMatrix<f64> = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(back.nrows(), m.nrows());
        assert_eq!(back.ncols(), m.ncols());
        assert_eq!(back.nnz(), m.nnz());
        for (r, c, v) in m.iter() {
            let w = back.get(r, c).unwrap();
            assert!((v - w).abs() < 1e-12);
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("jitspmm_sparse_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.mtx");
        let m = generate::banded::<f32>(16, 1, 3);
        write_matrix_market_file(&m, &path).unwrap();
        let back: CsrMatrix<f32> = read_matrix_market_file(&path).unwrap();
        assert_eq!(back.nnz(), m.nnz());
        std::fs::remove_file(&path).ok();
    }
}
