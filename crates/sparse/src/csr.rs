//! Compressed Sparse Row (CSR) matrix — the format all SpMM kernels consume.

use crate::dense::DenseMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;
use crate::storage::CsrStorage;

/// A sparse matrix in Compressed Sparse Row format.
///
/// Exactly the three-array layout of Figure 2 in the paper:
///
/// * `row_ptr` — `nrows + 1` offsets; row `i` occupies positions
///   `row_ptr[i] .. row_ptr[i + 1]` of the other two arrays,
/// * `col_indices` — the column of every non-zero, stored row by row,
/// * `values` — the value of every non-zero.
///
/// Column indices are `u32` (the JIT kernels load them with a zero-extending
/// 32-bit move) and row pointers are `u64`, matching the layout the code
/// generator bakes into the emitted instructions.
///
/// The non-zero arrays live in shared storage ([`CsrStorage`]): cloning a
/// matrix bumps reference counts instead of copying non-zeros, and
/// [`CsrMatrix::share_rows`] hands out a zero-copy row-range *view* whose
/// `col_indices`/`values` alias the parent's buffers — only the rebased
/// `row_ptr` (one `u64` per view row) is materialized. Non-zero arrays are
/// immutable for a matrix's lifetime, so sharing is invisible to every
/// consumer; element addresses are stable, which the JIT code generator
/// relies on when it embeds them into emitted instructions.
///
/// # Example
///
/// ```
/// use jitspmm_sparse::CsrMatrix;
/// let m = CsrMatrix::<f32>::from_triplets(2, 3, &[(0, 0, 1.0), (1, 2, 5.0)]).unwrap();
/// assert_eq!(m.nnz(), 2);
/// assert_eq!(m.row_cols(1), &[2]);
/// assert_eq!(m.get(1, 2), Some(5.0));
/// assert_eq!(m.get(1, 1), None);
/// ```
#[derive(Clone)]
pub struct CsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<u64>,
    storage: CsrStorage<T>,
}

/// Structural equality on the visible window: two matrices are equal when
/// their shapes, row pointers and (windowed) non-zeros agree — a zero-copy
/// view equals the owned copy of the same rows.
impl<T: PartialEq> PartialEq for CsrMatrix<T> {
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.row_ptr == other.row_ptr
            && self.storage.col_indices() == other.storage.col_indices()
            && self.storage.values() == other.storage.values()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CsrMatrix<T> {
    /// Prints a view's own window, never the parent's whole buffers.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrMatrix")
            .field("nrows", &self.nrows)
            .field("ncols", &self.ncols)
            .field("row_ptr", &self.row_ptr)
            .field("col_indices", &self.storage.col_indices())
            .field("values", &self.storage.values())
            .finish()
    }
}

impl<T: Scalar> CsrMatrix<T> {
    /// Build from raw CSR arrays, validating the structure.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] if the arrays are
    /// inconsistent (wrong lengths, non-monotonic row pointers, column
    /// indices out of range or unsorted within a row).
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<u64>,
        col_indices: Vec<u32>,
        values: Vec<T>,
    ) -> Result<CsrMatrix<T>, SparseError> {
        if row_ptr.len() != nrows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "row_ptr has length {} but expected {}",
                row_ptr.len(),
                nrows + 1
            )));
        }
        if col_indices.len() != values.len() {
            return Err(SparseError::InvalidStructure(format!(
                "col_indices ({}) and values ({}) lengths differ",
                col_indices.len(),
                values.len()
            )));
        }
        if row_ptr.first() != Some(&0) {
            return Err(SparseError::InvalidStructure("row_ptr[0] must be zero".into()));
        }
        if *row_ptr.last().unwrap() as usize != col_indices.len() {
            return Err(SparseError::InvalidStructure(format!(
                "row_ptr[last] = {} does not match nnz = {}",
                row_ptr.last().unwrap(),
                col_indices.len()
            )));
        }
        for i in 0..nrows {
            if row_ptr[i] > row_ptr[i + 1] {
                return Err(SparseError::InvalidStructure(format!(
                    "row_ptr is not monotonically non-decreasing at row {i}"
                )));
            }
            let (start, end) = (row_ptr[i] as usize, row_ptr[i + 1] as usize);
            let cols = &col_indices[start..end];
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidStructure(format!(
                        "columns of row {i} are not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = cols.last() {
                if last as usize >= ncols {
                    return Err(SparseError::InvalidStructure(format!(
                        "column {last} of row {i} exceeds ncols = {ncols}"
                    )));
                }
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            storage: CsrStorage::from_owned(col_indices, values),
        })
    }

    /// Build from `(row, col, value)` triplets (duplicates are summed).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] for out-of-range triplets.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, T)],
    ) -> Result<CsrMatrix<T>, SparseError> {
        let mut coo = crate::CooMatrix::with_capacity(nrows, ncols, triplets.len());
        for &(r, c, v) in triplets {
            coo.try_push(r, c, v)?;
        }
        Ok(coo.to_csr())
    }

    /// An `n x n` identity matrix.
    pub fn identity(n: usize) -> CsrMatrix<T> {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n as u64).collect(),
            storage: CsrStorage::from_owned((0..n as u32).collect(), vec![T::ONE; n]),
        }
    }

    /// An `nrows x ncols` matrix with no stored entries.
    pub fn zeros(nrows: usize, ncols: usize) -> CsrMatrix<T> {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            storage: CsrStorage::from_owned(Vec::new(), Vec::new()),
        }
    }

    /// Number of rows (`m` in the paper's notation).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (`n` in the paper's notation).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.storage.len()
    }

    /// The `row_ptr` array.
    #[inline]
    pub fn row_ptr(&self) -> &[u64] {
        &self.row_ptr
    }

    /// The `col_indices` array.
    #[inline]
    pub fn col_indices(&self) -> &[u32] {
        self.storage.col_indices()
    }

    /// The `values` array.
    #[inline]
    pub fn values(&self) -> &[T] {
        self.storage.values()
    }

    /// Number of non-zeros stored in row `row`.
    #[inline]
    pub fn row_nnz(&self, row: usize) -> usize {
        (self.row_ptr[row + 1] - self.row_ptr[row]) as usize
    }

    /// Column indices of row `row`.
    #[inline]
    pub fn row_cols(&self, row: usize) -> &[u32] {
        &self.storage.col_indices()[self.row_ptr[row] as usize..self.row_ptr[row + 1] as usize]
    }

    /// Values of row `row`.
    #[inline]
    pub fn row_values(&self, row: usize) -> &[T] {
        &self.storage.values()[self.row_ptr[row] as usize..self.row_ptr[row + 1] as usize]
    }

    /// The value at `(row, col)`, or `None` if that position is structurally
    /// zero.
    pub fn get(&self, row: usize, col: usize) -> Option<T> {
        let cols = self.row_cols(row);
        cols.binary_search(&(col as u32)).ok().map(|i| self.row_values(row)[i])
    }

    /// Iterate over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            self.row_cols(r).iter().zip(self.row_values(r)).map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// The transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix<T> {
        let mut row_counts = vec![0u64; self.ncols + 1];
        for &c in self.col_indices() {
            row_counts[c as usize + 1] += 1;
        }
        for i in 1..row_counts.len() {
            row_counts[i] += row_counts[i - 1];
        }
        let row_ptr = row_counts.clone();
        let mut cursor = row_counts;
        let mut col_indices = vec![0u32; self.nnz()];
        let mut values = vec![T::ZERO; self.nnz()];
        for (r, c, v) in self.iter() {
            let dst = cursor[c] as usize;
            col_indices[dst] = r as u32;
            values[dst] = v;
            cursor[c] += 1;
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            storage: CsrStorage::from_owned(col_indices, values),
        }
    }

    /// Histogram of row lengths, indexed by row.
    pub fn row_lengths(&self) -> Vec<usize> {
        (0..self.nrows).map(|r| self.row_nnz(r)).collect()
    }

    /// Reference (textbook) SpMM: `Y = self * X`, computed row by row exactly
    /// as in Algorithm 1 of the paper. Used as the correctness oracle for
    /// every optimized kernel.
    ///
    /// # Panics
    ///
    /// Panics if `x.nrows() != self.ncols()`.
    pub fn spmm_reference(&self, x: &DenseMatrix<T>) -> DenseMatrix<T> {
        assert_eq!(
            x.nrows(),
            self.ncols,
            "dense operand has {} rows but the sparse matrix has {} columns",
            x.nrows(),
            self.ncols
        );
        let d = x.ncols();
        let mut y = DenseMatrix::zeros(self.nrows, d);
        for i in 0..self.nrows {
            let out = y.row_mut(i);
            for (&k, &a) in self.row_cols(i).iter().zip(self.row_values(i)) {
                let xrow = x.row(k as usize);
                for j in 0..d {
                    out[j] += a * xrow[j];
                }
            }
        }
        y
    }

    /// Sparse matrix-vector product `y = self * x` (the `d = 1` special
    /// case), provided for the PageRank example and tests.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.ncols()`.
    pub fn spmv(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.ncols, "vector length must equal ncols");
        (0..self.nrows)
            .map(|i| {
                self.row_cols(i)
                    .iter()
                    .zip(self.row_values(i))
                    .map(|(&k, &a)| a * x[k as usize])
                    .sum()
            })
            .collect()
    }

    /// Consume the matrix and return `(nrows, ncols, row_ptr, col_indices,
    /// values)`. Zero-copy when this matrix is the sole owner of its
    /// non-zero buffers; a view (or a matrix whose storage other clones
    /// still share) copies its window out.
    pub fn into_raw_parts(self) -> (usize, usize, Vec<u64>, Vec<u32>, Vec<T>) {
        let (col_indices, values) = self.storage.into_arrays();
        (self.nrows, self.ncols, self.row_ptr, col_indices, values)
    }

    /// A zero-copy view of rows `start..end`: the view's
    /// `col_indices`/`values` alias this matrix's buffers (two
    /// reference-count bumps), and only the rebased `row_ptr` — one `u64`
    /// per view row — is materialized. O(`end - start`) time and memory,
    /// independent of how many non-zeros the rows hold.
    ///
    /// The view is a full [`CsrMatrix`] over the same column space: row `i`
    /// of the view is row `start + i` of the parent, bit-identical. This is
    /// what shard planning uses to split a huge matrix into row shards
    /// without doubling resident non-zero data.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.nrows()`.
    pub fn share_rows(&self, start: usize, end: usize) -> CsrMatrix<T> {
        assert!(
            start <= end && end <= self.nrows,
            "row range {start}..{end} exceeds nrows = {}",
            self.nrows
        );
        let lo = self.row_ptr[start];
        let hi = self.row_ptr[end];
        let row_ptr: Vec<u64> = self.row_ptr[start..=end].iter().map(|&p| p - lo).collect();
        CsrMatrix {
            nrows: end - start,
            ncols: self.ncols,
            row_ptr,
            storage: self.storage.window(lo as usize, hi as usize),
        }
    }

    /// Whether `self` and `other` share the same underlying non-zero
    /// buffers (pointer equality on the shared allocations) — true for a
    /// matrix and its [`CsrMatrix::share_rows`] views or clones, false for
    /// deep copies. The zero-copy assertion shard-plan tests rely on.
    pub fn shares_storage_with(&self, other: &CsrMatrix<T>) -> bool {
        self.storage.ptr_eq(&other.storage)
    }

    /// Whether this matrix is a strict row-range view of a larger parent
    /// (its storage windows only part of the underlying buffers).
    pub fn is_view(&self) -> bool {
        self.storage.is_window()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f32> {
        // The matrix from Figure 2 of the paper:
        // row 0: cols {0, 2} = 1.0, row 2: cols {2, 3}, row 3: cols {0,1,2,3}
        CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 2, 1.0),
                (2, 2, 3.0),
                (2, 3, 3.0),
                (3, 0, 4.0),
                (3, 1, 4.0),
                (3, 2, 4.0),
                (3, 3, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure2_layout() {
        let m = sample();
        assert_eq!(m.row_ptr(), &[0, 2, 2, 4, 8]);
        assert_eq!(m.col_indices(), &[0, 2, 2, 3, 0, 1, 2, 3]);
        assert_eq!(m.nnz(), 8);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_nnz(3), 4);
    }

    #[test]
    fn get_and_iter() {
        let m = sample();
        assert_eq!(m.get(3, 1), Some(4.0));
        assert_eq!(m.get(1, 1), None);
        assert_eq!(m.iter().count(), 8);
        let total: f32 = m.iter().map(|(_, _, v)| v).sum();
        assert_eq!(total, 1.0 + 1.0 + 3.0 + 3.0 + 4.0 * 4.0);
    }

    #[test]
    fn validation_rejects_bad_structure() {
        // row_ptr wrong length
        assert!(CsrMatrix::<f32>::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // non-monotone
        assert!(CsrMatrix::<f32>::from_raw_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0])
            .is_err());
        // col out of range
        assert!(CsrMatrix::<f32>::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // unsorted columns
        assert!(
            CsrMatrix::<f32>::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err()
        );
        // nnz mismatch
        assert!(
            CsrMatrix::<f32>::from_raw_parts(1, 3, vec![0, 3], vec![0, 1], vec![1.0, 1.0]).is_err()
        );
        // good one
        assert!(
            CsrMatrix::<f32>::from_raw_parts(1, 3, vec![0, 2], vec![0, 2], vec![1.0, 1.0]).is_ok()
        );
    }

    #[test]
    fn identity_and_zeros() {
        let i = CsrMatrix::<f64>::identity(5);
        assert_eq!(i.nnz(), 5);
        for k in 0..5 {
            assert_eq!(i.get(k, k), Some(1.0));
        }
        let z = CsrMatrix::<f64>::zeros(3, 7);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.ncols(), 7);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.get(1, 3), Some(4.0));
        assert_eq!(t.get(2, 0), Some(1.0));
        let tt = t.transpose();
        assert_eq!(tt, m);
    }

    #[test]
    fn reference_spmm_identity() {
        let m = sample();
        let x = DenseMatrix::<f32>::identity(4);
        let y = m.spmm_reference(&x);
        for (r, c, v) in m.iter() {
            assert_eq!(y.get(r, c), v);
        }
    }

    #[test]
    fn reference_spmm_known_values() {
        let m = CsrMatrix::<f32>::from_triplets(2, 3, &[(0, 0, 2.0), (0, 2, 1.0), (1, 1, 3.0)])
            .unwrap();
        let x = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let y = m.spmm_reference(&x);
        // Row 0: 2*[1,2] + 1*[5,6] = [7, 10]; Row 1: 3*[3,4] = [9, 12].
        assert_eq!(y.row(0), &[7.0, 10.0]);
        assert_eq!(y.row(1), &[9.0, 12.0]);
    }

    #[test]
    fn spmv_matches_spmm_single_column() {
        let m = sample();
        let x: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0];
        let y = m.spmv(&x);
        let xd = DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
        let yd = m.spmm_reference(&xd);
        for (i, &v) in y.iter().enumerate() {
            assert_eq!(v, yd.get(i, 0));
        }
    }

    #[test]
    fn row_lengths_reports_imbalance() {
        let m = sample();
        assert_eq!(m.row_lengths(), vec![2, 0, 2, 4]);
    }

    #[test]
    fn into_raw_parts_round_trip() {
        let m = sample();
        let clone = m.clone();
        let (nr, nc, rp, ci, vals) = m.into_raw_parts();
        let rebuilt = CsrMatrix::from_raw_parts(nr, nc, rp, ci, vals).unwrap();
        assert_eq!(rebuilt, clone);
    }

    #[test]
    fn share_rows_is_zero_copy_and_bit_identical() {
        let m = sample();
        let v = m.share_rows(2, 4);
        assert_eq!(v.nrows(), 2);
        assert_eq!(v.ncols(), 4);
        assert_eq!(v.nnz(), 6);
        assert_eq!(v.row_ptr(), &[0, 2, 6]);
        assert!(v.is_view());
        assert!(v.shares_storage_with(&m));
        // Same heap addresses — no copy happened.
        assert_eq!(v.col_indices().as_ptr(), m.col_indices()[2..].as_ptr());
        assert_eq!(v.values().as_ptr(), m.values()[2..].as_ptr());
        // Row i of the view is row 2 + i of the parent, bit for bit.
        for i in 0..2 {
            assert_eq!(v.row_cols(i), m.row_cols(2 + i));
            assert_eq!(v.row_values(i), m.row_values(2 + i));
        }
        // Equal to an owned rebuild of the same rows.
        let owned = CsrMatrix::from_raw_parts(
            2,
            4,
            v.row_ptr().to_vec(),
            v.col_indices().to_vec(),
            v.values().to_vec(),
        )
        .unwrap();
        assert_eq!(v, owned);
        assert!(!owned.shares_storage_with(&m));
    }

    #[test]
    fn share_rows_edge_windows() {
        let m = sample();
        // Full-range view: shares storage, covers everything.
        let all = m.share_rows(0, 4);
        assert_eq!(all, m);
        assert!(all.shares_storage_with(&m));
        assert!(!all.is_view());
        // Empty view of an empty range.
        let none = m.share_rows(1, 1);
        assert_eq!(none.nrows(), 0);
        assert_eq!(none.nnz(), 0);
        assert_eq!(none.row_ptr(), &[0]);
        // A view's reference multiply matches slicing the parent's result.
        let x = DenseMatrix::<f32>::identity(4);
        let y_full = m.spmm_reference(&x);
        let v = m.share_rows(2, 4);
        let y_view = v.spmm_reference(&x);
        for r in 0..2 {
            assert_eq!(y_view.row(r), y_full.row(2 + r));
        }
    }

    #[test]
    fn view_into_raw_parts_copies_window() {
        let m = sample();
        let v = m.share_rows(3, 4);
        let (nr, nc, rp, ci, vals) = v.into_raw_parts();
        assert_eq!((nr, nc), (1, 4));
        assert_eq!(rp, vec![0, 4]);
        assert_eq!(ci, vec![0, 1, 2, 3]);
        assert_eq!(vals, vec![4.0, 4.0, 4.0, 4.0]);
        // Parent unaffected.
        assert_eq!(m.nnz(), 8);
    }

    #[test]
    fn clone_shares_storage() {
        let m = sample();
        let c = m.clone();
        assert!(c.shares_storage_with(&m));
        assert_eq!(c, m);
    }
}
