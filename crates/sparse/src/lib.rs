//! # jitspmm-sparse — sparse-matrix substrate for the JITSPMM reproduction
//!
//! This crate provides everything the JITSPMM framework needs on the data
//! side:
//!
//! * [`CsrMatrix`] — the Compressed Sparse Row format the paper's kernels
//!   operate on (Figure 2 / Algorithm 1), plus [`CooMatrix`] as a builder
//!   format,
//! * [`CsrStorage`] — shared non-zero storage behind every matrix, so
//!   [`CsrMatrix::share_rows`] hands out zero-copy row-range views (shard
//!   planning borrows the parent's `col_indices`/`values` instead of
//!   copying them),
//! * [`DeltaBatch`] — edge-level deltas (insert / overwrite / delete)
//!   against a base matrix, with whole-matrix and row-range merges — the
//!   data layer behind `jitspmm`'s live incremental-update subsystem,
//! * [`DenseMatrix`] — the row-major dense input/output matrices `X` and `Y`,
//! * [`Scalar`] — the element trait tying `f32`/`f64` to the code generator,
//! * synthetic matrix generators ([`generate`]) — uniform random, RMAT
//!   (power-law), Kronecker, Mycielskian and banded matrices,
//! * the [`datasets`] registry — scaled-down stand-ins for the 14 SuiteSparse
//!   matrices of Table III,
//! * [`stats`] — structural statistics (degree distribution, imbalance) used
//!   by the evaluation harnesses,
//! * Matrix Market I/O ([`io`]).
//!
//! # Example
//!
//! ```
//! use jitspmm_sparse::{CooMatrix, CsrMatrix, DenseMatrix};
//!
//! let mut coo = CooMatrix::<f32>::new(3, 3);
//! coo.push(0, 0, 2.0);
//! coo.push(0, 2, 1.0);
//! coo.push(2, 1, 4.0);
//! let csr: CsrMatrix<f32> = coo.to_csr();
//! assert_eq!(csr.nnz(), 3);
//! let x = DenseMatrix::<f32>::identity(3);
//! // dense reference multiply provided for testing purposes
//! let y = csr.spmm_reference(&x);
//! assert_eq!(y.get(0, 2), 1.0);
//! ```

#![deny(missing_docs)]

mod coo;
mod csr;
mod dense;
mod error;
mod scalar;
mod storage;

pub mod delta;

pub mod datasets;
pub mod generate;
pub mod io;
pub mod stats;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use delta::{DeltaBatch, DeltaOp};
pub use dense::DenseMatrix;
pub use error::SparseError;
pub use scalar::{Scalar, ScalarKind};
pub use storage::CsrStorage;
