//! Edge-level deltas against a CSR matrix — the data layer behind the
//! dynamic-graph subsystem in `jitspmm` (`crates/core/src/update/`).
//!
//! A [`DeltaBatch`] is an ordered list of edge mutations — inserts,
//! value overwrites and deletes — recorded against a *base* matrix whose
//! dimensions never change (dynamic graphs mutate edges, not the vertex
//! set). Applying a batch produces a new [`CsrMatrix`]; the base is
//! untouched, as CSR non-zero arrays are immutable for a matrix's whole
//! lifetime (the JIT embeds their addresses into generated code).
//!
//! Two merge shapes are provided:
//!
//! * [`CsrMatrix::apply_delta`] — materialize the whole merged matrix.
//!   This is the from-scratch oracle the differential tests compare
//!   against, and the path the shard layer takes when a delta skews the
//!   nnz balance enough to force a full replan.
//! * [`CsrMatrix::apply_delta_rows`] — materialize only rows
//!   `start..end` of the merged matrix, as an owned sub-matrix. The
//!   shard layer calls this per *touched* shard and keeps every
//!   untouched shard as a zero-copy [`CsrMatrix::share_rows`]-style
//!   clone of the base, so a delta confined to one shard re-materializes
//!   one shard's non-zeros, not the whole graph's.
//!
//! # Semantics
//!
//! Ops apply in batch order; for several ops on the same `(row, col)`
//! the **last one wins** (an upsert after a delete re-inserts, a delete
//! after an upsert removes). [`DeltaOp::Upsert`] inserts the entry or
//! overwrites its stored value if present; [`DeltaOp::Delete`] removes
//! the entry and is a no-op when the entry is structurally absent.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;

/// One edge mutation against a base matrix. See the module docs for the
/// exact last-op-wins semantics of batches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaOp<T> {
    /// Insert `(row, col) = value`, or overwrite the stored value when
    /// the entry already exists.
    Upsert {
        /// Row of the mutated entry.
        row: usize,
        /// Column of the mutated entry.
        col: usize,
        /// New value.
        value: T,
    },
    /// Remove the entry at `(row, col)`; removing a structurally absent
    /// entry is a no-op.
    Delete {
        /// Row of the removed entry.
        row: usize,
        /// Column of the removed entry.
        col: usize,
    },
}

impl<T> DeltaOp<T> {
    /// Row this op touches.
    #[inline]
    pub fn row(&self) -> usize {
        match self {
            DeltaOp::Upsert { row, .. } | DeltaOp::Delete { row, .. } => *row,
        }
    }

    /// Column this op touches.
    #[inline]
    pub fn col(&self) -> usize {
        match self {
            DeltaOp::Upsert { col, .. } | DeltaOp::Delete { col, .. } => *col,
        }
    }
}

/// An ordered batch of edge mutations to apply against a base matrix.
///
/// ```
/// use jitspmm_sparse::{CsrMatrix, DeltaBatch};
///
/// let base = CsrMatrix::<f32>::from_triplets(2, 3, &[(0, 0, 1.0), (1, 2, 5.0)]).unwrap();
/// let mut delta = DeltaBatch::new();
/// delta.upsert(0, 1, 2.0); // insert a new edge
/// delta.upsert(1, 2, 7.0); // overwrite an existing value
/// delta.delete(0, 0); // remove an edge
/// let merged = base.apply_delta(&delta).unwrap();
/// assert_eq!(merged.get(0, 0), None);
/// assert_eq!(merged.get(0, 1), Some(2.0));
/// assert_eq!(merged.get(1, 2), Some(7.0));
/// assert_eq!(base.get(1, 2), Some(5.0), "the base is untouched");
/// ```
#[derive(Debug, Clone)]
pub struct DeltaBatch<T> {
    ops: Vec<DeltaOp<T>>,
}

impl<T> Default for DeltaBatch<T> {
    fn default() -> Self {
        DeltaBatch { ops: Vec::new() }
    }
}

impl<T: Scalar> DeltaBatch<T> {
    /// An empty batch.
    pub fn new() -> DeltaBatch<T> {
        DeltaBatch { ops: Vec::new() }
    }

    /// An empty batch with room for `cap` ops.
    pub fn with_capacity(cap: usize) -> DeltaBatch<T> {
        DeltaBatch { ops: Vec::with_capacity(cap) }
    }

    /// Append an insert-or-overwrite of `(row, col) = value`.
    pub fn upsert(&mut self, row: usize, col: usize, value: T) -> &mut Self {
        self.ops.push(DeltaOp::Upsert { row, col, value });
        self
    }

    /// Append a removal of `(row, col)` (no-op if absent at apply time).
    pub fn delete(&mut self, row: usize, col: usize) -> &mut Self {
        self.ops.push(DeltaOp::Delete { row, col });
        self
    }

    /// Append an arbitrary op.
    pub fn push(&mut self, op: DeltaOp<T>) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[DeltaOp<T>] {
        &self.ops
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Check every op against the base dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] for the first op outside
    /// an `nrows x ncols` matrix.
    pub fn validate(&self, nrows: usize, ncols: usize) -> Result<(), SparseError> {
        for op in &self.ops {
            if op.row() >= nrows || op.col() >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: op.row(),
                    col: op.col(),
                    nrows,
                    ncols,
                });
            }
        }
        Ok(())
    }

    /// The distinct rows this batch touches, sorted ascending. A shard
    /// whose row range contains none of these is untouched by the batch
    /// and can keep its compiled kernel as-is.
    pub fn touched_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self.ops.iter().map(DeltaOp::row).collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// Collapse the batch to one effective op per `(row, col)` — the
    /// last in batch order — sorted by `(row, col)`. `Some(v)` is an
    /// upsert, `None` a delete. This is the normal form both merge
    /// shapes consume, so a range merge composed shard by shard is
    /// guaranteed to agree with the whole-matrix merge.
    fn normalized(&self) -> Vec<(usize, u32, Option<T>)> {
        let mut tagged: Vec<(usize, u32, Option<T>)> = self
            .ops
            .iter()
            .map(|op| match *op {
                DeltaOp::Upsert { row, col, value } => (row, col as u32, Some(value)),
                DeltaOp::Delete { row, col } => (row, col as u32, None),
            })
            .collect();
        // Stable sort: equal (row, col) keys keep batch order, so the
        // trailing one of each run is the last-written op.
        tagged.sort_by_key(|&(row, col, _)| (row, col));
        let mut normal: Vec<(usize, u32, Option<T>)> = Vec::with_capacity(tagged.len());
        for op in tagged {
            match normal.last_mut() {
                Some(last) if last.0 == op.0 && last.1 == op.1 => *last = op,
                _ => normal.push(op),
            }
        }
        normal
    }
}

impl<T: Scalar> CsrMatrix<T> {
    /// Materialize the whole matrix with `delta` applied. The base is
    /// untouched; see the module docs of [`crate::delta`] for op
    /// semantics. This is the from-scratch oracle — the shard layer's
    /// incremental path ([`CsrMatrix::apply_delta_rows`] per touched
    /// shard) produces bit-identical rows.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if any op falls outside
    /// the base dimensions.
    pub fn apply_delta(&self, delta: &DeltaBatch<T>) -> Result<CsrMatrix<T>, SparseError> {
        self.apply_delta_rows(0, self.nrows(), delta)
    }

    /// Materialize rows `start..end` of the merged matrix as an owned
    /// sub-matrix (row `i` of the result is row `start + i` of the
    /// merge). Ops on rows outside the range are bounds-checked but not
    /// applied, so one global batch can be applied shard by shard and
    /// the concatenation of the per-shard results equals
    /// [`CsrMatrix::apply_delta`].
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if any op (in or out of
    /// range) falls outside the base dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.nrows()`.
    pub fn apply_delta_rows(
        &self,
        start: usize,
        end: usize,
        delta: &DeltaBatch<T>,
    ) -> Result<CsrMatrix<T>, SparseError> {
        assert!(
            start <= end && end <= self.nrows(),
            "row range {start}..{end} exceeds nrows = {}",
            self.nrows()
        );
        delta.validate(self.nrows(), self.ncols())?;
        let ops = delta.normalized();
        // The slice of normalized ops that lands inside the range.
        let lo = ops.partition_point(|&(row, _, _)| row < start);
        let hi = ops.partition_point(|&(row, _, _)| row < end);
        let ops = &ops[lo..hi];

        let base_nnz: usize = (self.row_ptr()[end] - self.row_ptr()[start]) as usize;
        let mut row_ptr: Vec<u64> = Vec::with_capacity(end - start + 1);
        let mut cols: Vec<u32> = Vec::with_capacity(base_nnz + ops.len());
        let mut vals: Vec<T> = Vec::with_capacity(base_nnz + ops.len());
        row_ptr.push(0);
        let mut cursor = 0usize;
        for row in start..end {
            let row_ops_end =
                cursor + ops[cursor..].partition_point(|&(op_row, _, _)| op_row == row);
            let row_ops = &ops[cursor..row_ops_end];
            cursor = row_ops_end;
            merge_row(self.row_cols(row), self.row_values(row), row_ops, &mut cols, &mut vals);
            row_ptr.push(cols.len() as u64);
        }
        // Re-validating on construction is cheap insurance: the merge is
        // sorted by construction, so this can only fail on internal bugs.
        CsrMatrix::from_raw_parts(end - start, self.ncols(), row_ptr, cols, vals)
    }
}

/// Merge one base row (sorted `base_cols`/`base_vals`) with its
/// normalized ops (sorted by column, one per column) into the output
/// arrays — a classic two-pointer sorted merge.
fn merge_row<T: Scalar>(
    base_cols: &[u32],
    base_vals: &[T],
    row_ops: &[(usize, u32, Option<T>)],
    cols: &mut Vec<u32>,
    vals: &mut Vec<T>,
) {
    let mut b = 0usize;
    let mut o = 0usize;
    while b < base_cols.len() || o < row_ops.len() {
        let base_col = base_cols.get(b).copied();
        let op_col = row_ops.get(o).map(|&(_, col, _)| col);
        match (base_col, op_col) {
            (Some(bc), Some(oc)) if bc < oc => {
                cols.push(bc);
                vals.push(base_vals[b]);
                b += 1;
            }
            (Some(bc), Some(oc)) if bc > oc => {
                if let Some(value) = row_ops[o].2 {
                    cols.push(oc);
                    vals.push(value);
                }
                o += 1;
            }
            (Some(_), Some(_)) => {
                // Same column: the op shadows the base entry (overwrite
                // or delete).
                if let Some(value) = row_ops[o].2 {
                    cols.push(base_cols[b]);
                    vals.push(value);
                }
                b += 1;
                o += 1;
            }
            (Some(bc), None) => {
                cols.push(bc);
                vals.push(base_vals[b]);
                b += 1;
            }
            (None, Some(oc)) => {
                if let Some(value) = row_ops[o].2 {
                    cols.push(oc);
                    vals.push(value);
                }
                o += 1;
            }
            (None, None) => unreachable!("loop condition guarantees one side remains"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CsrMatrix<f32> {
        CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 2, 1.5),
                (2, 2, 3.0),
                (2, 3, 3.5),
                (3, 0, 4.0),
                (3, 1, 4.5),
                (3, 2, 5.0),
                (3, 3, 5.5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn empty_delta_is_identity() {
        let m = base();
        let merged = m.apply_delta(&DeltaBatch::new()).unwrap();
        assert_eq!(merged, m);
        assert!(!merged.shares_storage_with(&m), "merge materializes fresh storage");
    }

    #[test]
    fn upsert_inserts_and_overwrites() {
        let m = base();
        let mut delta = DeltaBatch::new();
        delta.upsert(1, 1, 9.0); // insert into an empty row
        delta.upsert(0, 3, 8.0); // append past the row's last column
        delta.upsert(2, 2, -3.0); // overwrite in place
        let merged = m.apply_delta(&delta).unwrap();
        assert_eq!(merged.get(1, 1), Some(9.0));
        assert_eq!(merged.get(0, 3), Some(8.0));
        assert_eq!(merged.get(2, 2), Some(-3.0));
        assert_eq!(merged.nnz(), m.nnz() + 2);
        // Untouched entries carried over bit for bit.
        assert_eq!(merged.get(3, 1), Some(4.5));
    }

    #[test]
    fn delete_removes_and_ignores_absent() {
        let m = base();
        let mut delta = DeltaBatch::new();
        delta.delete(3, 2);
        delta.delete(1, 0); // absent: no-op
        let merged = m.apply_delta(&delta).unwrap();
        assert_eq!(merged.get(3, 2), None);
        assert_eq!(merged.nnz(), m.nnz() - 1);
        assert_eq!(merged.row_cols(3), &[0, 1, 3]);
    }

    #[test]
    fn last_op_wins_per_position() {
        let m = base();
        let mut delta = DeltaBatch::new();
        delta.upsert(0, 1, 1.0).delete(0, 1); // net: absent
        delta.delete(2, 2).upsert(2, 2, 7.0); // net: 7.0
        delta.upsert(3, 3, 1.0).upsert(3, 3, 2.0); // net: 2.0
        let merged = m.apply_delta(&delta).unwrap();
        assert_eq!(merged.get(0, 1), None);
        assert_eq!(merged.get(2, 2), Some(7.0));
        assert_eq!(merged.get(3, 3), Some(2.0));
    }

    #[test]
    fn validate_rejects_out_of_bounds() {
        let m = base();
        let mut delta = DeltaBatch::new();
        delta.upsert(0, 9, 1.0);
        assert!(matches!(m.apply_delta(&delta), Err(SparseError::IndexOutOfBounds { col: 9, .. })));
        let mut delta = DeltaBatch::<f32>::new();
        delta.delete(9, 0);
        assert!(delta.validate(4, 4).is_err());
        // Out-of-range ops poison the whole batch even for a row-range
        // merge that would not apply them.
        let mut delta = DeltaBatch::new();
        delta.upsert(3, 9, 1.0);
        assert!(m.apply_delta_rows(0, 1, &delta).is_err());
    }

    #[test]
    fn touched_rows_sorted_dedup() {
        let mut delta = DeltaBatch::<f32>::new();
        delta.upsert(5, 0, 1.0).delete(2, 1).upsert(5, 3, 2.0).delete(0, 0);
        assert_eq!(delta.touched_rows(), vec![0, 2, 5]);
        assert!(DeltaBatch::<f32>::new().touched_rows().is_empty());
    }

    #[test]
    fn range_merge_composes_to_full_merge() {
        let m = base();
        let mut delta = DeltaBatch::new();
        delta.upsert(0, 3, 8.0).delete(3, 0).upsert(1, 2, 6.0).upsert(2, 2, -1.0);
        let full = m.apply_delta(&delta).unwrap();
        // Split at every possible cut: the two halves always concatenate
        // to the full merge.
        for cut in 0..=m.nrows() {
            let top = m.apply_delta_rows(0, cut, &delta).unwrap();
            let bottom = m.apply_delta_rows(cut, m.nrows(), &delta).unwrap();
            assert_eq!(top.nrows() + bottom.nrows(), full.nrows());
            assert_eq!(top.nnz() + bottom.nnz(), full.nnz());
            for r in 0..cut {
                assert_eq!(top.row_cols(r), full.row_cols(r));
                assert_eq!(top.row_values(r), full.row_values(r));
            }
            for r in cut..m.nrows() {
                assert_eq!(bottom.row_cols(r - cut), full.row_cols(r));
                assert_eq!(bottom.row_values(r - cut), full.row_values(r));
            }
        }
    }

    #[test]
    fn merge_matches_triplet_rebuild() {
        // Oracle: apply the same edits to a triplet list and rebuild.
        let m = base();
        let mut delta = DeltaBatch::new();
        delta.upsert(1, 0, 2.0).delete(0, 0).upsert(3, 2, -5.0).delete(2, 3).upsert(1, 3, 4.0);
        let merged = m.apply_delta(&delta).unwrap();
        let mut entries: std::collections::BTreeMap<(usize, usize), f32> =
            m.iter().map(|(r, c, v)| ((r, c), v)).collect();
        entries.insert((1, 0), 2.0);
        entries.remove(&(0, 0));
        entries.insert((3, 2), -5.0);
        entries.remove(&(2, 3));
        entries.insert((1, 3), 4.0);
        let triplets: Vec<(usize, usize, f32)> =
            entries.into_iter().map(|((r, c), v)| (r, c, v)).collect();
        let rebuilt = CsrMatrix::from_triplets(4, 4, &triplets).unwrap();
        assert_eq!(merged, rebuilt);
    }

    #[test]
    fn delta_against_view_applies_in_view_coordinates() {
        let m = base();
        let view = m.share_rows(2, 4);
        let mut delta = DeltaBatch::new();
        delta.upsert(0, 0, 9.0); // row 0 of the view = row 2 of the parent
        let merged = view.apply_delta(&delta).unwrap();
        assert_eq!(merged.get(0, 0), Some(9.0));
        assert_eq!(merged.get(1, 0), Some(4.0));
        assert_eq!(m.get(2, 0), None, "parent untouched");
    }
}
