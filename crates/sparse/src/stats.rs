//! Structural statistics of sparse matrices.
//!
//! The workload-division experiments of the paper hinge on how unevenly the
//! non-zeros are spread across rows; these statistics quantify that and are
//! printed by the Table III harness.

use crate::csr::CsrMatrix;
use crate::scalar::Scalar;

/// Summary statistics of a sparse matrix's row structure.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Number of stored non-zeros.
    pub nnz: usize,
    /// Mean non-zeros per row.
    pub avg_row_nnz: f64,
    /// Largest row.
    pub max_row_nnz: usize,
    /// Smallest row.
    pub min_row_nnz: usize,
    /// Number of completely empty rows.
    pub empty_rows: usize,
    /// Population standard deviation of row lengths.
    pub row_nnz_stddev: f64,
    /// `max_row_nnz / avg_row_nnz` — the load-imbalance factor a naive
    /// row-split partition would suffer.
    pub imbalance: f64,
    /// Gini coefficient of the row-length distribution (0 = perfectly even,
    /// → 1 = a few rows hold everything).
    pub gini: f64,
}

impl MatrixStats {
    /// Compute statistics for `matrix`.
    pub fn of<T: Scalar>(matrix: &CsrMatrix<T>) -> MatrixStats {
        let lens = matrix.row_lengths();
        let nrows = matrix.nrows();
        let nnz = matrix.nnz();
        let avg = if nrows == 0 { 0.0 } else { nnz as f64 / nrows as f64 };
        let max = lens.iter().copied().max().unwrap_or(0);
        let min = lens.iter().copied().min().unwrap_or(0);
        let empty = lens.iter().filter(|&&l| l == 0).count();
        let var = if nrows == 0 {
            0.0
        } else {
            lens.iter().map(|&l| (l as f64 - avg).powi(2)).sum::<f64>() / nrows as f64
        };
        MatrixStats {
            nrows,
            ncols: matrix.ncols(),
            nnz,
            avg_row_nnz: avg,
            max_row_nnz: max,
            min_row_nnz: min,
            empty_rows: empty,
            row_nnz_stddev: var.sqrt(),
            imbalance: if avg > 0.0 { max as f64 / avg } else { 0.0 },
            gini: gini(&lens),
        }
    }
}

/// Gini coefficient of a non-negative integer distribution.
fn gini(values: &[usize]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted.iter().enumerate().map(|(i, v)| (i as f64 + 1.0) * v).sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

impl std::fmt::Display for MatrixStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} x {}, nnz = {}, avg row = {:.2}, max row = {}, empty rows = {}, imbalance = {:.1}, gini = {:.3}",
            self.nrows,
            self.ncols,
            self.nnz,
            self.avg_row_nnz,
            self.max_row_nnz,
            self.empty_rows,
            self.imbalance,
            self.gini
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn stats_of_identity_are_uniform() {
        let m = CsrMatrix::<f32>::identity(100);
        let s = MatrixStats::of(&m);
        assert_eq!(s.nnz, 100);
        assert_eq!(s.max_row_nnz, 1);
        assert_eq!(s.min_row_nnz, 1);
        assert_eq!(s.empty_rows, 0);
        assert_eq!(s.imbalance, 1.0);
        assert!(s.gini.abs() < 1e-9);
        assert!(s.row_nnz_stddev.abs() < 1e-9);
    }

    #[test]
    fn stats_detect_skew() {
        let skewed = generate::rmat::<f32>(10, 10_000, generate::RmatConfig::GRAPH500, 2);
        let flat = generate::banded::<f32>(1024, 4, 2);
        let ss = MatrixStats::of(&skewed);
        let fs = MatrixStats::of(&flat);
        assert!(ss.gini > fs.gini);
        assert!(ss.imbalance > fs.imbalance);
        assert!(ss.empty_rows > 0);
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0, 0]), 0.0);
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12);
        // All mass in one bucket out of many: close to 1 - 1/n.
        let g = gini(&[0, 0, 0, 0, 0, 0, 0, 0, 0, 100]);
        assert!(g > 0.85, "g = {g}");
    }

    #[test]
    fn display_contains_key_fields() {
        let m = CsrMatrix::<f32>::identity(4);
        let text = MatrixStats::of(&m).to_string();
        assert!(text.contains("nnz = 4"));
    }
}
