//! Synthetic sparse-matrix generators.
//!
//! The paper evaluates on the 14 largest SuiteSparse matrices (Table III),
//! which range from 0.9 to 11.6 **billion** non-zeros — far beyond what this
//! environment can hold. The generators in this module produce scaled-down
//! matrices from the same structural families (uniform random, power-law web
//! and social graphs via RMAT, Graph500-style Kronecker, Mycielskian
//! constructions, and banded matrices), preserving the property that matters
//! for the paper's experiments: the distribution of non-zeros across rows and
//! therefore the load-(im)balance seen by the workload-division strategies.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::scalar::Scalar;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for the RMAT recursive-matrix generator.
///
/// The four probabilities control how skewed the generated degree
/// distribution is; they must sum to (approximately) one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Probability of recursing into the top-right quadrant.
    pub b: f64,
    /// Probability of recursing into the bottom-left quadrant.
    pub c: f64,
    /// Probability of recursing into the bottom-right quadrant.
    pub d: f64,
}

impl RmatConfig {
    /// The Graph500 parameterization (heavily skewed, social-network-like).
    pub const GRAPH500: RmatConfig = RmatConfig { a: 0.57, b: 0.19, c: 0.19, d: 0.05 };

    /// A milder skew resembling web crawls.
    pub const WEB: RmatConfig = RmatConfig { a: 0.45, b: 0.22, c: 0.22, d: 0.11 };

    /// No skew at all — equivalent to a uniform random matrix.
    pub const UNIFORM: RmatConfig = RmatConfig { a: 0.25, b: 0.25, c: 0.25, d: 0.25 };
}

/// A uniformly random `nrows x ncols` matrix with approximately `nnz`
/// non-zeros (duplicates are merged, so the exact count can be slightly
/// lower). Mirrors GAP-urand.
pub fn uniform<T: Scalar>(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CsrMatrix<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz);
    for _ in 0..nnz {
        let r = rng.random_range(0..nrows);
        let c = rng.random_range(0..ncols);
        coo.push(r, c, random_value(&mut rng));
    }
    coo.to_csr()
}

/// An RMAT (recursive matrix) graph with `2^scale` rows/columns and
/// approximately `nnz` non-zeros. RMAT is the standard generator for
/// power-law graphs (social networks and web crawls); the paper's largest inputs
/// (com-Friendster, twitter7, GAP-kron, uk-2005, ...) all belong to this
/// family.
pub fn rmat<T: Scalar>(scale: u32, nnz: usize, config: RmatConfig, seed: u64) -> CsrMatrix<T> {
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, nnz);
    let sum = config.a + config.b + config.c + config.d;
    for _ in 0..nnz {
        let (mut r, mut c) = (0usize, 0usize);
        let mut half = n >> 1;
        while half > 0 {
            let p: f64 = rng.random::<f64>() * sum;
            if p < config.a {
                // top-left: nothing to add
            } else if p < config.a + config.b {
                c += half;
            } else if p < config.a + config.b + config.c {
                r += half;
            } else {
                r += half;
                c += half;
            }
            half >>= 1;
        }
        coo.push(r, c, random_value(&mut rng));
    }
    coo.to_csr()
}

/// A Graph500-style Kronecker graph: RMAT with the Graph500 parameters.
/// Mirrors GAP-kron.
pub fn kronecker<T: Scalar>(scale: u32, edge_factor: usize, seed: u64) -> CsrMatrix<T> {
    let n = 1usize << scale;
    rmat(scale, n * edge_factor, RmatConfig::GRAPH500, seed)
}

/// The Mycielskian construction applied `k - 2` times starting from a single
/// edge, yielding the Mycielskian graph `M_k` (triangle-free with chromatic
/// number `k`). The paper's mycielskian19/mycielskian20 datasets are exactly
/// these graphs for `k = 19, 20`; their adjacency matrices are unusually
/// dense and regular compared to the web/social graphs.
///
/// Values are assigned deterministically from the edge endpoints.
///
/// # Panics
///
/// Panics if `k < 2` or the graph would exceed `usize` capacity.
pub fn mycielskian<T: Scalar>(k: u32) -> CsrMatrix<T> {
    assert!(k >= 2, "the Mycielskian construction starts at k = 2 (a single edge)");
    // Start with M_2 = K_2: two vertices joined by an edge.
    let mut n: usize = 2;
    let mut edges: Vec<(usize, usize)> = vec![(0, 1)];
    for _ in 2..k {
        // Mycielskian step: given G with vertices 0..n, create copies
        // u_i -> n + i and apex vertex w = 2n. Edges:
        //  * original edges (x, y)
        //  * (x, n + y) and (y, n + x) for each original edge
        //  * (n + i, 2n) for every i
        let mut next: Vec<(usize, usize)> = Vec::with_capacity(edges.len() * 3 + n);
        next.extend_from_slice(&edges);
        for &(x, y) in &edges {
            next.push((x, n + y));
            next.push((y, n + x));
        }
        let w = 2 * n;
        for i in 0..n {
            next.push((n + i, w));
        }
        edges = next;
        n = 2 * n + 1;
    }
    let mut coo = CooMatrix::with_capacity(n, n, edges.len() * 2);
    for &(x, y) in &edges {
        let v = T::from_f64(1.0 + ((x * 31 + y) % 7) as f64 * 0.125);
        coo.push(x, y, v);
        coo.push(y, x, v);
    }
    coo.to_csr()
}

/// A banded matrix with `bandwidth` diagonals on each side of the main
/// diagonal; every in-band entry is stored. Produces a perfectly
/// load-balanced matrix, the structural opposite of the power-law graphs.
pub fn banded<T: Scalar>(n: usize, bandwidth: usize, seed: u64) -> CsrMatrix<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, n * (2 * bandwidth + 1));
    for i in 0..n {
        let lo = i.saturating_sub(bandwidth);
        let hi = (i + bandwidth).min(n - 1);
        for j in lo..=hi {
            coo.push(i, j, random_value(&mut rng));
        }
    }
    coo.to_csr()
}

/// A matrix whose row lengths follow a (truncated) power-law distribution
/// with exponent `alpha`, generated Chung-Lu style: row `i` receives
/// approximately `w_i ∝ (i + 1)^(-alpha)` of the `nnz` budget, with column
/// targets chosen uniformly. Used to model literature co-occurrence graphs
/// (MOLIERE_2016, AGATHA_2015), which have heavy rows but less extreme
/// hubs than social networks.
pub fn power_law_rows<T: Scalar>(
    nrows: usize,
    ncols: usize,
    nnz: usize,
    alpha: f64,
    seed: u64,
) -> CsrMatrix<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (0..nrows).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    let total: f64 = weights.iter().sum();
    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz);
    for (i, w) in weights.iter().enumerate() {
        let quota = ((w / total) * nnz as f64).round() as usize;
        // Keep hub rows bounded by the column count.
        let quota = quota.min(ncols);
        for _ in 0..quota {
            let c = rng.random_range(0..ncols);
            coo.push(i, c, random_value(&mut rng));
        }
    }
    coo.to_csr()
}

/// A matrix with no empty rows: `base_nnz_per_row` entries in every row plus
/// `extra` entries scattered uniformly. Useful for tests that need full
/// coverage of every row path.
pub fn regular<T: Scalar>(
    nrows: usize,
    ncols: usize,
    base_nnz_per_row: usize,
    extra: usize,
    seed: u64,
) -> CsrMatrix<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(nrows, ncols, nrows * base_nnz_per_row + extra);
    for i in 0..nrows {
        for _ in 0..base_nnz_per_row {
            let c = rng.random_range(0..ncols);
            coo.push(i, c, random_value(&mut rng));
        }
    }
    for _ in 0..extra {
        let r = rng.random_range(0..nrows);
        let c = rng.random_range(0..ncols);
        coo.push(r, c, random_value(&mut rng));
    }
    coo.to_csr()
}

fn random_value<T: Scalar>(rng: &mut StdRng) -> T {
    // Values in [0.5, 1.5): bounded away from zero so accumulated results
    // do not cancel, keeping floating-point comparisons in tests meaningful.
    T::from_f64(0.5 + rng.random::<f64>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shape_and_density() {
        let m = uniform::<f32>(100, 200, 1000, 1);
        assert_eq!(m.nrows(), 100);
        assert_eq!(m.ncols(), 200);
        assert!(m.nnz() > 900 && m.nnz() <= 1000, "nnz = {}", m.nnz());
    }

    #[test]
    fn uniform_is_reproducible() {
        let a = uniform::<f32>(64, 64, 500, 7);
        let b = uniform::<f32>(64, 64, 500, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn rmat_is_skewed() {
        let m = rmat::<f32>(10, 8000, RmatConfig::GRAPH500, 3);
        assert_eq!(m.nrows(), 1024);
        let lens = m.row_lengths();
        let max = *lens.iter().max().unwrap();
        let avg = m.nnz() as f64 / m.nrows() as f64;
        // A Graph500 RMAT must have hub rows well above the average degree.
        assert!(max as f64 > 4.0 * avg, "max = {max}, avg = {avg}");
    }

    #[test]
    fn uniform_rmat_is_not_skewed() {
        let m = rmat::<f32>(10, 8000, RmatConfig::UNIFORM, 3);
        let lens = m.row_lengths();
        let max = *lens.iter().max().unwrap();
        let avg = m.nnz() as f64 / m.nrows() as f64;
        assert!((max as f64) < 6.0 * avg, "max = {max}, avg = {avg}");
    }

    #[test]
    fn kronecker_scales_with_edge_factor() {
        let m = kronecker::<f32>(8, 16, 11);
        assert_eq!(m.nrows(), 256);
        assert!(m.nnz() > 256 * 8, "duplicates merged too aggressively: {}", m.nnz());
    }

    #[test]
    fn mycielskian_sizes_match_theory() {
        // |V(M_k)| = 3 * 2^(k-2) - 1, |E(M_k)| = (7 * 3^(k-2) - ... ) —
        // easier: check the recurrences directly.
        let m3 = mycielskian::<f32>(3); // C_5: 5 vertices, 5 edges
        assert_eq!(m3.nrows(), 5);
        assert_eq!(m3.nnz(), 10); // symmetric storage
        let m4 = mycielskian::<f32>(4); // Grötzsch graph: 11 vertices, 20 edges
        assert_eq!(m4.nrows(), 11);
        assert_eq!(m4.nnz(), 40);
        let m5 = mycielskian::<f32>(5); // 23 vertices, 71 edges
        assert_eq!(m5.nrows(), 23);
        assert_eq!(m5.nnz(), 142);
    }

    #[test]
    fn mycielskian_is_symmetric() {
        let m = mycielskian::<f64>(5);
        let t = m.transpose();
        assert_eq!(m, t);
    }

    #[test]
    fn banded_has_uniform_rows() {
        let m = banded::<f32>(50, 2, 5);
        let lens = m.row_lengths();
        assert_eq!(lens[25], 5);
        assert_eq!(lens[0], 3); // truncated at the left edge
        assert_eq!(lens[49], 3);
        assert_eq!(m.nnz(), 50 * 5 - 2 * (2 + 1));
    }

    #[test]
    fn power_law_rows_front_loaded() {
        let m = power_law_rows::<f32>(500, 500, 10_000, 0.9, 13);
        let lens = m.row_lengths();
        let head: usize = lens[..50].iter().sum();
        let tail: usize = lens[450..].iter().sum();
        assert!(head > 5 * tail.max(1), "head = {head}, tail = {tail}");
    }

    #[test]
    fn regular_has_no_empty_rows() {
        let m = regular::<f32>(200, 64, 3, 50, 17);
        assert!(m.row_lengths().iter().all(|&l| l >= 1));
    }
}
