//! Shared non-zero storage behind [`CsrMatrix`](crate::CsrMatrix): the
//! `col_indices`/`values` arrays live in reference-counted buffers so a
//! row-range *view* of a matrix (see
//! [`CsrMatrix::share_rows`](crate::CsrMatrix::share_rows)) can borrow its
//! parent's non-zeros instead of copying them.
//!
//! # Why always-`Arc`, not an owned/borrowed enum
//!
//! The obvious alternative — a `Cow`-style `Owned(Vec)` / `Shared(Arc)`
//! enum — cannot promote an owned parent to shared storage through `&self`:
//! taking a zero-copy view of an owned matrix would need to *move* its
//! `Vec`s into an `Arc` behind a shared reference. Since `Arc::new(vec)`
//! moves the `Vec` header without touching its heap buffer, wrapping every
//! matrix's arrays in `Arc` up front costs nothing per element, keeps the
//! element addresses stable (the JIT code generator embeds those addresses
//! into emitted instructions), and lets *any* matrix hand out zero-copy
//! windows. So storage is always an `Arc`'d buffer plus an
//! `offset..offset + len` window into it; a freshly built matrix simply
//! windows the whole buffer.
//!
//! Cloning a matrix (or storage) bumps the reference counts — non-zero
//! arrays are immutable for a matrix's whole lifetime, so sharing is
//! observationally equivalent to the deep copy it replaces.

use std::sync::Arc;

/// The non-zero arrays of a CSR matrix: reference-counted `col_indices` and
/// `values` buffers plus the window of them this matrix covers.
///
/// See the module docs for why storage is always shared. `Clone` is
/// shallow (two reference-count bumps) and available for every `T`.
pub struct CsrStorage<T> {
    col_indices: Arc<Vec<u32>>,
    values: Arc<Vec<T>>,
    /// First position of the window into both buffers.
    offset: usize,
    /// Number of non-zeros in the window.
    len: usize,
}

impl<T> CsrStorage<T> {
    /// Wrap freshly built non-zero arrays. Moves the `Vec` headers into
    /// `Arc`s without copying any elements; the window covers everything.
    pub fn from_owned(col_indices: Vec<u32>, values: Vec<T>) -> CsrStorage<T> {
        debug_assert_eq!(col_indices.len(), values.len());
        let len = col_indices.len();
        CsrStorage { col_indices: Arc::new(col_indices), values: Arc::new(values), offset: 0, len }
    }

    /// A sub-window `range` positions into this window (zero-copy: the new
    /// storage shares the same buffers).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds this window's length.
    pub fn window(&self, start: usize, end: usize) -> CsrStorage<T> {
        assert!(start <= end && end <= self.len, "window {start}..{end} exceeds len {}", self.len);
        CsrStorage {
            col_indices: Arc::clone(&self.col_indices),
            values: Arc::clone(&self.values),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// The column indices in this window.
    #[inline]
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices[self.offset..self.offset + self.len]
    }

    /// The values in this window.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values[self.offset..self.offset + self.len]
    }

    /// Number of non-zeros in this window.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window holds no non-zeros.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `self` and `other` window the **same underlying buffers**
    /// (pointer equality on the shared allocations, regardless of window).
    pub fn ptr_eq(&self, other: &CsrStorage<T>) -> bool {
        Arc::ptr_eq(&self.col_indices, &other.col_indices)
            && Arc::ptr_eq(&self.values, &other.values)
    }

    /// Whether this storage is a strict window — it covers only part of its
    /// underlying buffers (the shape [`window`](CsrStorage::window) produces
    /// for a non-trivial row range).
    pub fn is_window(&self) -> bool {
        self.offset != 0 || self.len != self.col_indices.len()
    }

    /// Recover owned `(col_indices, values)` vectors. Zero-copy when this
    /// storage is the sole owner of full-buffer windows (`Arc::try_unwrap`);
    /// otherwise the window is copied out.
    pub(crate) fn into_arrays(self) -> (Vec<u32>, Vec<T>)
    where
        T: Clone,
    {
        let CsrStorage { col_indices, values, offset, len } = self;
        let cols = if offset == 0 && len == col_indices.len() {
            Arc::try_unwrap(col_indices).unwrap_or_else(|shared| shared.as_ref().clone())
        } else {
            col_indices[offset..offset + len].to_vec()
        };
        let vals = if offset == 0 && len == values.len() {
            Arc::try_unwrap(values).unwrap_or_else(|shared| shared.as_ref().clone())
        } else {
            values[offset..offset + len].to_vec()
        };
        (cols, vals)
    }
}

impl<T> Clone for CsrStorage<T> {
    fn clone(&self) -> Self {
        CsrStorage {
            col_indices: Arc::clone(&self.col_indices),
            values: Arc::clone(&self.values),
            offset: self.offset,
            len: self.len,
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CsrStorage<T> {
    /// Prints only the window, never the whole underlying buffer — a view's
    /// debug output stays proportional to the view.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrStorage")
            .field("col_indices", &self.col_indices())
            .field("values", &self.values())
            .field("shared", &self.is_window())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_owned_windows_everything() {
        let s = CsrStorage::from_owned(vec![0, 2, 1], vec![1.0f32, 2.0, 3.0]);
        assert_eq!(s.col_indices(), &[0, 2, 1]);
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_window());
    }

    #[test]
    fn window_shares_buffers() {
        let s = CsrStorage::from_owned(vec![0, 2, 1, 3], vec![1.0f32, 2.0, 3.0, 4.0]);
        let w = s.window(1, 3);
        assert_eq!(w.col_indices(), &[2, 1]);
        assert_eq!(w.values(), &[2.0, 3.0]);
        assert!(w.is_window());
        assert!(w.ptr_eq(&s));
        // Windows of windows compose.
        let ww = w.window(1, 2);
        assert_eq!(ww.col_indices(), &[1]);
        assert!(ww.ptr_eq(&s));
        // Element addresses are stable across sharing — the property the
        // JIT's embedded pointers rely on.
        assert_eq!(&s.col_indices()[1] as *const u32, w.col_indices().as_ptr());
    }

    #[test]
    fn into_arrays_unwraps_sole_owner_and_copies_windows() {
        let s = CsrStorage::from_owned(vec![5, 6], vec![1.0f64, 2.0]);
        let base = s.col_indices().as_ptr();
        let (cols, vals) = s.into_arrays();
        // Sole owner of a full window: the original buffer comes back.
        assert_eq!(cols.as_ptr(), base);
        assert_eq!(vals, vec![1.0, 2.0]);

        let s = CsrStorage::from_owned(vec![5, 6, 7], vec![1.0f64, 2.0, 3.0]);
        let w = s.window(1, 3);
        let (cols, vals) = w.into_arrays();
        assert_eq!(cols, vec![6, 7]);
        assert_eq!(vals, vec![2.0, 3.0]);
        // The parent is untouched.
        assert_eq!(s.len(), 3);
    }
}
