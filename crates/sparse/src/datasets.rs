//! The dataset registry: scaled-down stand-ins for the 14 SuiteSparse
//! matrices of Table III.
//!
//! The paper evaluates on the 14 largest matrices of the SuiteSparse
//! collection (0.9–11.6 billion non-zeros, up to 184 million rows). Those
//! inputs require hundreds of gigabytes of memory and a network download
//! that is unavailable here, so this module generates synthetic matrices of
//! the same *structural family* for each named dataset, scaled down by
//! roughly three orders of magnitude while keeping
//!
//! * the relative ordering by non-zero count,
//! * the average row degree regime (heavy literature graphs vs. sparse
//!   road/web graphs), and
//! * the degree skew (power-law hubs vs. uniform vs. regular Mycielskian
//!   structure),
//!
//! which are the properties that drive the differences between the
//! workload-division strategies the paper studies.

use crate::csr::CsrMatrix;
use crate::generate::{self, RmatConfig};
use crate::scalar::Scalar;
use crate::stats::MatrixStats;

/// The structural family a dataset belongs to, which selects the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetClass {
    /// Mycielskian graph construction (dense, regular, no hubs).
    Mycielskian {
        /// The Mycielskian order `k` used for the scaled-down stand-in.
        order: u32,
    },
    /// Web crawl: power-law with moderate skew (uk-2005, webbase-2001, ...).
    WebCrawl,
    /// Social network: power-law with extreme hubs (twitter7, com-Friendster).
    SocialNetwork,
    /// Graph500 Kronecker generator (GAP-kron).
    Kronecker,
    /// Uniform random (GAP-urand).
    UniformRandom,
    /// Literature/biomedical co-occurrence graph: heavy average degree
    /// (MOLIERE_2016, AGATHA_2015).
    Literature,
}

/// A named dataset: the paper's statistics plus the scaled-down generation
/// recipe used by this reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as it appears in Table III.
    pub name: &'static str,
    /// Row count reported in the paper (Table III).
    pub paper_rows: u64,
    /// Non-zero count reported in the paper (Table III).
    pub paper_nnz: u64,
    /// Structural family.
    pub class: DatasetClass,
    /// Rows of the scaled-down stand-in.
    pub scaled_rows: usize,
    /// Approximate non-zeros of the scaled-down stand-in.
    pub scaled_nnz: usize,
    /// Seed used for generation, fixed per dataset for reproducibility.
    pub seed: u64,
}

impl DatasetSpec {
    /// Generate the scaled-down matrix for this dataset.
    pub fn generate<T: Scalar>(&self) -> CsrMatrix<T> {
        match self.class {
            DatasetClass::Mycielskian { order } => generate::mycielskian(order),
            DatasetClass::WebCrawl => {
                let scale = log2_ceil(self.scaled_rows);
                generate::rmat(scale, self.scaled_nnz, RmatConfig::WEB, self.seed)
            }
            DatasetClass::SocialNetwork => {
                let scale = log2_ceil(self.scaled_rows);
                generate::rmat(scale, self.scaled_nnz, RmatConfig::GRAPH500, self.seed)
            }
            DatasetClass::Kronecker => {
                let scale = log2_ceil(self.scaled_rows);
                let edge_factor = (self.scaled_nnz / (1usize << scale)).max(1);
                generate::kronecker(scale, edge_factor, self.seed)
            }
            DatasetClass::UniformRandom => {
                generate::uniform(self.scaled_rows, self.scaled_rows, self.scaled_nnz, self.seed)
            }
            DatasetClass::Literature => generate::power_law_rows(
                self.scaled_rows,
                self.scaled_rows,
                self.scaled_nnz,
                0.35,
                self.seed,
            ),
        }
    }

    /// Statistics of the generated stand-in matrix.
    pub fn stats(&self) -> MatrixStats {
        MatrixStats::of(&self.generate::<f32>())
    }

    /// Average non-zeros per row in the paper's original matrix.
    pub fn paper_avg_degree(&self) -> f64 {
        self.paper_nnz as f64 / self.paper_rows as f64
    }
}

fn log2_ceil(n: usize) -> u32 {
    let mut scale = 0;
    while (1usize << scale) < n {
        scale += 1;
    }
    scale
}

/// The 14 datasets of Table III, in the paper's order (ascending non-zeros).
pub fn table3() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "mycielskian19",
            paper_rows: 393_215,
            paper_nnz: 903_194_710,
            class: DatasetClass::Mycielskian { order: 13 },
            scaled_rows: 6_143,
            scaled_nnz: 1_227_742,
            seed: 101,
        },
        DatasetSpec {
            name: "uk-2005",
            paper_rows: 39_459_925,
            paper_nnz: 936_364_282,
            class: DatasetClass::WebCrawl,
            scaled_rows: 65_536,
            scaled_nnz: 1_550_000,
            seed: 102,
        },
        DatasetSpec {
            name: "webbase-2001",
            paper_rows: 118_142_155,
            paper_nnz: 1_019_903_190,
            class: DatasetClass::WebCrawl,
            scaled_rows: 131_072,
            scaled_nnz: 1_150_000,
            seed: 103,
        },
        DatasetSpec {
            name: "it-2004",
            paper_rows: 41_291_594,
            paper_nnz: 1_150_725_436,
            class: DatasetClass::WebCrawl,
            scaled_rows: 65_536,
            scaled_nnz: 1_850_000,
            seed: 104,
        },
        DatasetSpec {
            name: "GAP-twitter",
            paper_rows: 61_578_415,
            paper_nnz: 1_468_364_884,
            class: DatasetClass::SocialNetwork,
            scaled_rows: 65_536,
            scaled_nnz: 1_600_000,
            seed: 105,
        },
        DatasetSpec {
            name: "twitter7",
            paper_rows: 41_652_230,
            paper_nnz: 1_468_365_182,
            class: DatasetClass::SocialNetwork,
            scaled_rows: 65_536,
            scaled_nnz: 2_350_000,
            seed: 106,
        },
        DatasetSpec {
            name: "GAP-web",
            paper_rows: 50_636_151,
            paper_nnz: 1_930_292_948,
            class: DatasetClass::WebCrawl,
            scaled_rows: 65_536,
            scaled_nnz: 2_500_000,
            seed: 107,
        },
        DatasetSpec {
            name: "sk-2005",
            paper_rows: 50_636_154,
            paper_nnz: 1_949_412_601,
            class: DatasetClass::WebCrawl,
            scaled_rows: 65_536,
            scaled_nnz: 2_520_000,
            seed: 108,
        },
        DatasetSpec {
            name: "mycielskian20",
            paper_rows: 786_431,
            paper_nnz: 2_710_370_560,
            class: DatasetClass::Mycielskian { order: 14 },
            scaled_rows: 12_287,
            scaled_nnz: 3_695_512,
            seed: 109,
        },
        DatasetSpec {
            name: "com-Friendster",
            paper_rows: 65_608_366,
            paper_nnz: 3_612_134_270,
            class: DatasetClass::SocialNetwork,
            scaled_rows: 131_072,
            scaled_nnz: 3_600_000,
            seed: 110,
        },
        DatasetSpec {
            name: "GAP-kron",
            paper_rows: 134_217_726,
            paper_nnz: 4_223_264_644,
            class: DatasetClass::Kronecker,
            scaled_rows: 131_072,
            scaled_nnz: 4_200_000,
            seed: 111,
        },
        DatasetSpec {
            name: "GAP-urand",
            paper_rows: 134_217_728,
            paper_nnz: 4_294_966_740,
            class: DatasetClass::UniformRandom,
            scaled_rows: 131_072,
            scaled_nnz: 4_300_000,
            seed: 112,
        },
        DatasetSpec {
            name: "MOLIERE_2016",
            paper_rows: 30_239_687,
            paper_nnz: 6_677_301_366,
            class: DatasetClass::Literature,
            scaled_rows: 32_768,
            scaled_nnz: 6_700_000,
            seed: 113,
        },
        DatasetSpec {
            name: "AGATHA_2015",
            paper_rows: 183_964_077,
            paper_nnz: 11_588_725_964,
            class: DatasetClass::Literature,
            scaled_rows: 131_072,
            scaled_nnz: 8_000_000,
            seed: 114,
        },
    ]
}

/// A smaller selection of datasets (one per structural family) used by tests
/// and quick benchmark runs.
pub fn quick_suite() -> Vec<DatasetSpec> {
    let names =
        ["mycielskian19", "uk-2005", "GAP-twitter", "GAP-kron", "GAP-urand", "MOLIERE_2016"];
    table3().into_iter().filter(|d| names.contains(&d.name)).collect()
}

/// Look a dataset up by its Table III name.
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    table3().into_iter().find(|d| d.name == name)
}

/// The `uk-2005` stand-in at an even smaller size, matching the single-thread
/// scalar experiment of Table II (which only uses this one matrix with
/// `d = 8`).
pub fn uk2005_scalar_experiment<T: Scalar>() -> CsrMatrix<T> {
    generate::rmat(15, 800_000, RmatConfig::WEB, 202)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_14_entries_in_paper_order() {
        let specs = table3();
        assert_eq!(specs.len(), 14);
        assert_eq!(specs[0].name, "mycielskian19");
        assert_eq!(specs[13].name, "AGATHA_2015");
        // Ascending by paper nnz, as in Table III.
        for w in specs.windows(2) {
            assert!(w[0].paper_nnz <= w[1].paper_nnz);
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("GAP-kron").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn quick_suite_is_a_subset() {
        let quick = quick_suite();
        assert!(quick.len() >= 4);
        for d in quick {
            assert!(by_name(d.name).is_some());
        }
    }

    #[test]
    fn generated_sizes_are_in_the_right_ballpark() {
        // Only check the cheap ones here; the expensive ones are covered by
        // integration tests and the Table III harness.
        let spec = by_name("mycielskian19").unwrap();
        let m = spec.generate::<f32>();
        assert_eq!(m.nrows(), spec.scaled_rows);
        let spec = by_name("uk-2005").unwrap();
        let m = spec.generate::<f32>();
        assert_eq!(m.nrows(), spec.scaled_rows);
        assert!(m.nnz() as f64 > spec.scaled_nnz as f64 * 0.5);
    }

    #[test]
    fn paper_degree_regimes_preserved() {
        // Literature graphs have much heavier average degree than web crawls,
        // both in the paper and in the stand-ins.
        let lit = by_name("MOLIERE_2016").unwrap();
        let web = by_name("uk-2005").unwrap();
        assert!(lit.paper_avg_degree() > 4.0 * web.paper_avg_degree());
        let lit_avg = lit.scaled_nnz as f64 / lit.scaled_rows as f64;
        let web_avg = web.scaled_nnz as f64 / web.scaled_rows as f64;
        assert!(lit_avg > 4.0 * web_avg);
    }

    #[test]
    fn mycielskian_order_matches_row_target() {
        // 3 * 2^(k-2) - 1 rows for order k.
        let spec = by_name("mycielskian19").unwrap();
        if let DatasetClass::Mycielskian { order } = spec.class {
            assert_eq!(3 * (1usize << (order - 2)) - 1, spec.scaled_rows);
        } else {
            panic!("wrong class");
        }
    }
}
