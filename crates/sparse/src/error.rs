//! Error type for sparse-matrix construction and I/O.

use std::fmt;

/// Errors produced while building, validating or reading sparse matrices.
#[derive(Debug)]
pub enum SparseError {
    /// A coordinate was outside the declared matrix dimensions.
    IndexOutOfBounds {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// Declared number of rows.
        nrows: usize,
        /// Declared number of columns.
        ncols: usize,
    },
    /// The CSR arrays are structurally inconsistent.
    InvalidStructure(String),
    /// Dimension mismatch between operands of a matrix operation.
    DimensionMismatch(String),
    /// A Matrix Market file could not be parsed.
    Parse {
        /// 1-based line number of the failure.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds { row, col, nrows, ncols } => {
                write!(f, "entry ({row}, {col}) is outside the {nrows}x{ncols} matrix")
            }
            SparseError::InvalidStructure(msg) => write!(f, "invalid CSR structure: {msg}"),
            SparseError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            SparseError::Parse { line, message } => {
                write!(f, "matrix market parse error at line {line}: {message}")
            }
            SparseError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SparseError::IndexOutOfBounds { row: 5, col: 6, nrows: 3, ncols: 3 };
        assert!(e.to_string().contains("(5, 6)"));
        let e = SparseError::Parse { line: 7, message: "bad".into() };
        assert!(e.to_string().contains("line 7"));
        assert!(SparseError::InvalidStructure("x".into()).to_string().contains("x"));
    }
}
