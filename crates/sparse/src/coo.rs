//! Coordinate-list (COO) sparse matrix — the builder format.

use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::scalar::Scalar;

/// A sparse matrix stored as unsorted `(row, col, value)` triplets.
///
/// COO is the natural format for incremental construction and for the
/// synthetic generators; convert to [`CsrMatrix`] with [`CooMatrix::to_csr`]
/// before running SpMM.
///
/// # Example
///
/// ```
/// use jitspmm_sparse::CooMatrix;
/// let mut m = CooMatrix::<f32>::new(2, 2);
/// m.push(0, 1, 3.0);
/// m.push(1, 0, -1.0);
/// m.push(0, 1, 2.0);          // duplicate: summed during conversion
/// let csr = m.to_csr();
/// assert_eq!(csr.nnz(), 2);
/// assert_eq!(csr.row_values(0), &[5.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CooMatrix<T> {
    nrows: usize,
    ncols: usize,
    entries: Vec<(u32, u32, T)>,
}

impl<T: Scalar> CooMatrix<T> {
    /// Create an empty `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> CooMatrix<T> {
        CooMatrix { nrows, ncols, entries: Vec::new() }
    }

    /// Create an empty matrix with room reserved for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> CooMatrix<T> {
        CooMatrix { nrows, ncols, entries: Vec::with_capacity(cap) }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (duplicates counted individually).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append an entry.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds; use [`CooMatrix::try_push`]
    /// for a fallible variant.
    pub fn push(&mut self, row: usize, col: usize, value: T) {
        self.try_push(row, col, value).expect("coordinate out of bounds");
    }

    /// Append an entry, returning an error for out-of-bounds coordinates.
    ///
    /// # Errors
    ///
    /// [`SparseError::IndexOutOfBounds`] if `row`/`col` exceed the declared
    /// shape.
    pub fn try_push(&mut self, row: usize, col: usize, value: T) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.entries.push((row as u32, col as u32, value));
        Ok(())
    }

    /// Iterate over the stored triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        self.entries.iter().map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Convert to CSR, sorting entries and summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix<T> {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);

        let mut row_ptr = vec![0u64; self.nrows + 1];
        let mut col_indices: Vec<u32> = Vec::with_capacity(entries.len());
        let mut values: Vec<T> = Vec::with_capacity(entries.len());

        let mut prev: Option<(u32, u32)> = None;
        for &(r, c, v) in &entries {
            if prev == Some((r, c)) {
                // Duplicate coordinate: accumulate into the stored value.
                let last = values.len() - 1;
                values[last] += v;
            } else {
                col_indices.push(c);
                values.push(v);
                row_ptr[r as usize + 1] = col_indices.len() as u64;
                prev = Some((r, c));
            }
        }
        // Row pointers for rows that received entries hold cumulative counts;
        // fill in the rows that stayed empty.
        for i in 1..row_ptr.len() {
            if row_ptr[i] < row_ptr[i - 1] {
                row_ptr[i] = row_ptr[i - 1];
            }
        }
        CsrMatrix::from_raw_parts(self.nrows, self.ncols, row_ptr, col_indices, values)
            .expect("COO conversion produced valid CSR")
    }
}

impl<T: Scalar> FromIterator<(usize, usize, T)> for CooMatrix<T> {
    /// Build a matrix just large enough to hold every triplet.
    fn from_iter<I: IntoIterator<Item = (usize, usize, T)>>(iter: I) -> Self {
        let entries: Vec<(usize, usize, T)> = iter.into_iter().collect();
        let nrows = entries.iter().map(|e| e.0 + 1).max().unwrap_or(0);
        let ncols = entries.iter().map(|e| e.1 + 1).max().unwrap_or(0);
        let mut m = CooMatrix::with_capacity(nrows, ncols, entries.len());
        for (r, c, v) in entries {
            m.push(r, c, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut m = CooMatrix::<f32>::new(4, 4);
        assert!(m.is_empty());
        m.push(0, 0, 1.0);
        m.push(3, 3, 2.0);
        assert_eq!(m.len(), 2);
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.ncols(), 4);
    }

    #[test]
    fn out_of_bounds_is_error() {
        let mut m = CooMatrix::<f32>::new(2, 2);
        assert!(m.try_push(2, 0, 1.0).is_err());
        assert!(m.try_push(0, 2, 1.0).is_err());
        assert!(m.try_push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn to_csr_sorts_rows_and_columns() {
        let mut m = CooMatrix::<f64>::new(3, 4);
        m.push(2, 1, 5.0);
        m.push(0, 3, 1.0);
        m.push(0, 0, 2.0);
        m.push(1, 2, 3.0);
        let csr = m.to_csr();
        assert_eq!(csr.row_cols(0), &[0, 3]);
        assert_eq!(csr.row_values(0), &[2.0, 1.0]);
        assert_eq!(csr.row_cols(1), &[2]);
        assert_eq!(csr.row_cols(2), &[1]);
        assert_eq!(csr.nnz(), 4);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut m = CooMatrix::<f32>::new(2, 2);
        m.push(1, 1, 1.0);
        m.push(1, 1, 2.0);
        m.push(1, 1, 4.0);
        m.push(0, 0, 1.0);
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.row_values(1), &[7.0]);
    }

    #[test]
    fn empty_rows_have_empty_slices() {
        let mut m = CooMatrix::<f32>::new(5, 5);
        m.push(4, 0, 1.0);
        let csr = m.to_csr();
        for r in 0..4 {
            assert!(csr.row_cols(r).is_empty());
        }
        assert_eq!(csr.row_cols(4), &[0]);
    }

    #[test]
    fn from_iterator_infers_shape() {
        let m: CooMatrix<f32> = vec![(0usize, 1usize, 1.0f32), (5, 2, 2.0)].into_iter().collect();
        assert_eq!(m.nrows(), 6);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iter_yields_insertion_order() {
        let mut m = CooMatrix::<f32>::new(2, 2);
        m.push(1, 0, 1.0);
        m.push(0, 1, 2.0);
        let v: Vec<_> = m.iter().collect();
        assert_eq!(v, vec![(1, 0, 1.0), (0, 1, 2.0)]);
    }
}
