//! Row-major dense matrices (the `X` and `Y` operands of SpMM).

use crate::scalar::Scalar;
use rand::distr::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A dense matrix stored in row-major order.
///
/// The JITSPMM kernels address the dense input `X` and output `Y` by raw
/// pointer, so this type guarantees a contiguous row-major layout and exposes
/// it via [`DenseMatrix::as_slice`] / [`DenseMatrix::as_mut_slice`].
///
/// # Example
///
/// ```
/// use jitspmm_sparse::DenseMatrix;
/// let mut m = DenseMatrix::<f32>::zeros(2, 3);
/// m.set(1, 2, 5.0);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<T> {
    nrows: usize,
    ncols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseMatrix<T> {
    /// A matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> DenseMatrix<T> {
        DenseMatrix { nrows, ncols, data: vec![T::ZERO; nrows * ncols] }
    }

    /// A matrix filled with `value`.
    pub fn filled(nrows: usize, ncols: usize, value: T) -> DenseMatrix<T> {
        DenseMatrix { nrows, ncols, data: vec![value; nrows * ncols] }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> DenseMatrix<T> {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, T::ONE);
        }
        m
    }

    /// Build from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<T>]) -> DenseMatrix<T> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        DenseMatrix { nrows, ncols, data }
    }

    /// Build from a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<T>) -> DenseMatrix<T> {
        assert_eq!(data.len(), nrows * ncols, "buffer length must be nrows * ncols");
        DenseMatrix { nrows, ncols, data }
    }

    /// A matrix of uniformly distributed random values in `[0, 1)`,
    /// reproducible from `seed`. This mirrors the paper's random dense input
    /// matrices (§V.A).
    pub fn random(nrows: usize, ncols: usize, seed: u64) -> DenseMatrix<T> {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Uniform::new(0.0f64, 1.0).expect("valid uniform range");
        let data = (0..nrows * ncols).map(|_| T::from_f64(dist.sample(&mut rng))).collect();
        DenseMatrix { nrows, ncols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (`d` in the paper's notation).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> T {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        self.data[row * self.ncols + col]
    }

    /// Overwrite the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        self.data[row * self.ncols + col] = value;
    }

    /// Row `row` as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[T] {
        &self.data[row * self.ncols..(row + 1) * self.ncols]
    }

    /// Row `row` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [T] {
        &mut self.data[row * self.ncols..(row + 1) * self.ncols]
    }

    /// The whole buffer in row-major order.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The whole buffer in row-major order, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Pointer to the first element (used by the JIT kernels).
    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.data.as_ptr()
    }

    /// Mutable pointer to the first element (used by the JIT kernels).
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.data.as_mut_ptr()
    }

    /// Set every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = T::ZERO);
    }

    /// Consume the matrix and return its row-major buffer.
    ///
    /// Together with [`DenseMatrix::from_vec`] this lets callers recycle
    /// output storage across computations (the JITSPMM engine does so
    /// internally: its kernels overwrite every output element, so a reused
    /// buffer needs neither a fresh allocation nor a memset).
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Largest absolute element-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix<T>) -> f64 {
        assert_eq!(self.nrows, other.nrows, "row count mismatch");
        assert_eq!(self.ncols, other.ncols, "column count mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (*a - *b).abs().to_f64()).fold(0.0, f64::max)
    }

    /// Whether every element differs from `other` by at most `tol` in
    /// relative terms (absolute for tiny magnitudes).
    pub fn approx_eq(&self, other: &DenseMatrix<T>, tol: f64) -> bool {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return false;
        }
        self.data.iter().zip(&other.data).all(|(a, b)| {
            let (a, b) = (a.to_f64(), b.to_f64());
            let scale = a.abs().max(b.abs()).max(1.0);
            (a - b).abs() <= tol * scale
        })
    }

    /// Sum of all elements (useful as a cheap checksum in benches).
    pub fn checksum(&self) -> f64 {
        self.data.iter().map(|v| v.to_f64()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = DenseMatrix::<f32>::zeros(3, 4);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.get(2, 3), 0.0);
        m.set(2, 3, 9.0);
        assert_eq!(m.get(2, 3), 9.0);
        assert_eq!(m.as_slice().len(), 12);
    }

    #[test]
    fn from_rows_layout_is_row_major() {
        let m = DenseMatrix::from_rows(&[vec![1.0f32, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        let _ = DenseMatrix::from_rows(&[vec![1.0f32], vec![1.0, 2.0]]);
    }

    #[test]
    fn identity_diagonal() {
        let m = DenseMatrix::<f64>::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = DenseMatrix::<f32>::random(10, 8, 42);
        let b = DenseMatrix::<f32>::random(10, 8, 42);
        let c = DenseMatrix::<f32>::random(10, 8, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn approx_eq_and_diff() {
        let a = DenseMatrix::from_rows(&[vec![1.0f32, 2.0]]);
        let mut b = a.clone();
        assert!(a.approx_eq(&b, 1e-12));
        b.set(0, 1, 2.0 + 1e-3);
        assert!(!a.approx_eq(&b, 1e-6));
        assert!(a.approx_eq(&b, 1e-2));
        assert!(a.max_abs_diff(&b) > 0.0);
    }

    #[test]
    fn checksum_and_fill_zero() {
        let mut m = DenseMatrix::<f64>::filled(2, 2, 2.5);
        assert_eq!(m.checksum(), 10.0);
        m.fill_zero();
        assert_eq!(m.checksum(), 0.0);
    }
}
