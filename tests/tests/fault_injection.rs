//! Chaos tests: fault-injected kernel panics and slow launches, via
//! `jitspmm::serve::fault` (the `fault-injection` feature).
//!
//! The containment contract under test: a panicked kernel job fails only its
//! own request — a typed [`ServerResponse::Failed`] carrying the panic
//! message — while unrelated engines keep serving and the server stays
//! usable afterwards. A sharded engine is the one exception: its shards run
//! in lockstep, so a shard panic poisons that engine's lane (every pending
//! request on it fails, typed) but still touches nothing else.
//!
//! The fault hooks are process-global, so every test here holds
//! [`fault::exclusive`] for its whole body — the tests serialize against
//! each other whatever the harness's thread count — and computes reference
//! results *before* arming, because plain `execute` calls consume fault
//! tickets too.

use jitspmm::serve::{
    fault, AdmissionPolicy, RejectReason, ServeOptions, ServerRequest, SpmmServer,
};
use jitspmm::{JitSpmmBuilder, WorkerPool};
use jitspmm_integration_tests::{host_supports_jit, small_skewed, small_uniform};
use jitspmm_sparse::DenseMatrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

const SKEWED_COLS: usize = 512;
const UNIFORM_COLS: usize = 350;
const D: usize = 4;

#[test]
fn a_kernel_panic_fails_only_its_request() {
    let _guard = fault::exclusive();
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let b = small_skewed();
    // One worker: kernel jobs enter in submission order, so the armed
    // countdown deterministically hits the first request sent.
    let pool = WorkerPool::new(1);
    let server = SpmmServer::new(vec![
        JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, D).unwrap(),
        JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&b, D).unwrap(),
    ])
    .unwrap();
    // Four requests across both engines. The kernel entry that trips the
    // armed countdown races between the pool worker and the serving loop's
    // help-first join, so *which* request dies is not deterministic — and
    // must not matter: the contract is that exactly one dies, typed, and
    // every other request is answered bit-identically.
    let requests: Vec<(usize, DenseMatrix<f32>)> = vec![
        (0, DenseMatrix::random(UNIFORM_COLS, D, 10)),
        (1, DenseMatrix::random(SKEWED_COLS, D, 20)),
        (1, DenseMatrix::random(SKEWED_COLS, D, 21)),
        (1, DenseMatrix::random(SKEWED_COLS, D, 22)),
    ];
    // References before arming: these execute calls consume no tickets now
    // and must not later.
    let expected: Vec<DenseMatrix<f32>> = requests
        .iter()
        .map(|(engine, x)| (*server.single(*engine).unwrap().execute(x).unwrap().0).clone())
        .collect();

    fault::arm_kernel_panic(1);
    let mut failed: Vec<(usize, String)> = Vec::new();
    let mut completed: Vec<DenseMatrix<f32>> = Vec::new();
    let (report, ()) = server
        .serve_controlled(
            // Explicit depth 2 forces real pipelining even on a single-core
            // host, so the panic surfaces on the complete side of the
            // stream, not inside the synchronous push.
            ServeOptions::new(AdmissionPolicy::blocking(8)).with_depth(2),
            |sender| {
                for (engine, x) in requests.iter() {
                    sender.send_request(ServerRequest::new(*engine, x.clone())).unwrap();
                }
            },
            |response| {
                if let Some(message) = response.failure() {
                    failed.push((response.engine(), message.to_string()));
                } else {
                    completed.push((**response.output()).clone());
                }
            },
        )
        .unwrap();

    // Exactly one request failed, with the injected message.
    assert_eq!(failed.len(), 1, "exactly one request fails: {failed:?}");
    let (_, message) = &failed[0];
    assert!(
        message.contains(fault::INJECTED_PANIC),
        "the typed failure carries the panic message, got: {message}"
    );
    assert_eq!(report.failed, 1);
    assert_eq!(report.requests, 3);
    assert_eq!(report.offered(), 4);
    // Every survivor — on either engine — is bit-identical to its
    // reference: the panic corrupted nothing around it.
    assert_eq!(completed.len(), 3);
    let mut used = vec![false; expected.len()];
    for output in &completed {
        let hit = expected
            .iter()
            .enumerate()
            .position(|(i, e)| !used[i] && output == e)
            .expect("a surviving output matches no fault-free reference");
        used[hit] = true;
    }

    // The server is reusable after the fault (the countdown is spent),
    // including the engine that took the panic.
    let reuse: Vec<ServerRequest<f32>> = vec![
        ServerRequest::new(0, DenseMatrix::random(UNIFORM_COLS, D, 30)),
        ServerRequest::new(1, DenseMatrix::random(SKEWED_COLS, D, 31)),
    ];
    let (responses, report) = server.serve_batch(2, reuse).unwrap();
    assert_eq!(report.requests, 2);
    assert!(responses.iter().all(|r| r.is_completed()), "both engines serve again after the fault");
}

#[test]
fn a_mid_stream_panic_spares_later_requests_on_the_same_engine() {
    let _guard = fault::exclusive();
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let pool = WorkerPool::new(1);
    let engine = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, D).unwrap();
    let server = SpmmServer::new(vec![engine]).unwrap();
    let total = 5usize;
    let inputs: Vec<DenseMatrix<f32>> =
        (0..total).map(|i| DenseMatrix::random(UNIFORM_COLS, D, 40 + i as u64)).collect();
    let expected: Vec<DenseMatrix<f32>> =
        inputs.iter().map(|x| (*server.single(0).unwrap().execute(x).unwrap().0).clone()).collect();

    // The third kernel entry panics — one request in the middle of the
    // stream (which one exactly depends on the worker/helper entry race).
    fault::arm_kernel_panic(3);
    let mut failed_requests: Vec<usize> = Vec::new();
    let mut completed: Vec<DenseMatrix<f32>> = Vec::new();
    let (report, ()) = server
        .serve_controlled(
            ServeOptions::new(AdmissionPolicy::blocking(8)).with_depth(2),
            |sender| {
                for x in inputs.iter().cloned() {
                    sender.send_request(ServerRequest::new(0, x)).unwrap();
                }
            },
            |response| {
                if response.failure().is_some() {
                    failed_requests.push(response.request());
                } else {
                    completed.push((**response.output()).clone());
                }
            },
        )
        .unwrap();

    assert_eq!(failed_requests.len(), 1, "exactly one mid-stream request fails");
    assert_eq!(report.failed, 1);
    assert_eq!(report.requests, total - 1);
    // The stream recovered: every other request — including the ones
    // pipelined behind the panic — completed bit-identical to its
    // reference.
    assert_eq!(completed.len(), total - 1);
    let mut used = vec![false; expected.len()];
    for output in &completed {
        let hit = expected
            .iter()
            .enumerate()
            .position(|(i, e)| !used[i] && output == e)
            .expect("a surviving output matches no fault-free reference");
        used[hit] = true;
    }
    assert_eq!(
        used.iter().filter(|matched| !**matched).count(),
        1,
        "exactly one reference goes unmatched: the panicked request's"
    );
}

#[test]
fn a_shard_panic_poisons_only_that_sharded_lane() {
    let _guard = fault::exclusive();
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let b = small_skewed();
    let pool = WorkerPool::new(1);
    let plan = jitspmm::shard::plan_shards(&a, 2, 1).unwrap();
    let sharded = jitspmm::shard::ShardedSpmm::compile(&plan, D, pool.clone()).unwrap();
    let single = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&b, D).unwrap();
    let server = SpmmServer::new(vec![single]).unwrap();
    assert_eq!(server.add_sharded(sharded).unwrap(), 1);
    let healthy: Vec<DenseMatrix<f32>> =
        (0..2).map(|i| DenseMatrix::random(SKEWED_COLS, D, 50 + i as u64)).collect();
    let expected: Vec<DenseMatrix<f32>> = healthy
        .iter()
        .map(|x| (*server.single(0).unwrap().execute(x).unwrap().0).clone())
        .collect();

    // Phase the traffic so the armed ticket can only land on the sharded
    // engine: its three requests go first, and the single engine's only
    // after all three are answered — by then the first sharded request has
    // tripped the fault and poisoned the lane.
    fault::arm_kernel_panic(1);
    let answered_sharded = AtomicUsize::new(0);
    let answered_ref = &answered_sharded;
    let mut sharded_failures = 0usize;
    let mut sharded_rejections = 0usize;
    let mut completed: Vec<(usize, DenseMatrix<f32>)> = Vec::new();
    let (report, ()) = server
        .serve_controlled(
            ServeOptions::new(AdmissionPolicy::blocking(8)),
            move |sender| {
                // Three requests to the sharded engine: one trips the fault,
                // the rest land on a poisoned (or draining) lane.
                for i in 0..3u64 {
                    sender
                        .send_request(ServerRequest::new(
                            1,
                            DenseMatrix::random(UNIFORM_COLS, D, 60 + i),
                        ))
                        .unwrap();
                }
                while answered_ref.load(Ordering::SeqCst) < 3 {
                    std::thread::yield_now();
                }
                for x in healthy.iter().cloned() {
                    sender.send_request(ServerRequest::new(0, x)).unwrap();
                }
            },
            |response| match (response.engine(), response.failure(), response.rejection()) {
                (1, Some(_), _) => {
                    sharded_failures += 1;
                    answered_sharded.fetch_add(1, Ordering::SeqCst);
                }
                (1, _, Some(reason)) => {
                    assert_eq!(reason, RejectReason::Draining);
                    sharded_rejections += 1;
                    answered_sharded.fetch_add(1, Ordering::SeqCst);
                }
                (engine, None, None) => {
                    assert_eq!(engine, 0, "only the single engine may complete requests");
                    completed.push((response.index(), (**response.output()).clone()));
                }
                other => panic!("unexpected response shape: {other:?}"),
            },
        )
        .unwrap();

    // Every sharded request is answered — failed or typed-rejected, never
    // silently dropped or completed — and nothing else is touched.
    assert!(sharded_failures >= 1, "the tripping request fails with the panic");
    assert_eq!(sharded_failures + sharded_rejections, 3, "all sharded requests answered");
    assert_eq!(report.requests, 2);
    assert_eq!(report.failed + report.rejected, 3);
    assert_eq!(completed.len(), 2);
    for (index, output) in &completed {
        assert_eq!(output, &expected[*index], "the single engine's results are untouched");
    }

    // A fresh session reopens the sharded engine's pipeline: the poisoning
    // was per-session, the compiled engine itself is intact.
    let x = DenseMatrix::random(UNIFORM_COLS, D, 70);
    let direct = server.sharded(1).unwrap();
    let (y, _) = pool.scope(|scope| direct.execute(scope, &x)).unwrap();
    let (responses, _) = server.serve_batch(0, vec![ServerRequest::new(1, x)]).unwrap();
    assert!(responses[0].is_completed(), "the sharded engine serves again in a new session");
    assert_eq!(
        &**responses[0].output(),
        &*y,
        "post-fault sharded results are bit-identical to direct execution"
    );
}

#[test]
fn slow_launches_shed_deadline_budgeted_requests() {
    let _guard = fault::exclusive();
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let pool = WorkerPool::new(1);
    let engine = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, D).unwrap();
    let server = SpmmServer::new(vec![engine]).unwrap();
    let total = 4usize;

    // Every kernel launch sleeps 150ms; depth 1 keeps the serving loop
    // synchronous with each launch, so while one slow request runs, the
    // 20ms budgets of the queued ones burn down and the router sheds them.
    fault::arm_kernel_delay(Duration::from_millis(150), 16);
    let mut completed = 0usize;
    let mut shed = 0usize;
    let (report, ()) = server
        .serve_controlled(
            ServeOptions::new(AdmissionPolicy::blocking(8)).with_depth(1),
            |sender| {
                // The first request has no deadline — it anchors at least
                // one slow completion; the rest have tight budgets.
                sender
                    .send_request(ServerRequest::new(0, DenseMatrix::random(UNIFORM_COLS, D, 80)))
                    .unwrap();
                for i in 1..total as u64 {
                    sender
                        .send_request(
                            ServerRequest::new(0, DenseMatrix::random(UNIFORM_COLS, D, 80 + i))
                                .with_deadline(Duration::from_millis(20)),
                        )
                        .unwrap();
                }
            },
            |response| match response.rejection() {
                Some(RejectReason::DeadlinePassed) => shed += 1,
                None if response.is_completed() => completed += 1,
                other => panic!("unexpected response: {other:?}"),
            },
        )
        .unwrap();

    assert!(completed >= 1, "the deadline-free request always completes");
    assert!(shed >= 2, "150ms launches must shed 20ms budgets behind them, shed only {shed}");
    assert_eq!(completed + shed, total, "every request is answered exactly once");
    assert_eq!(report.requests, completed);
    assert_eq!(report.shed_deadline, shed);
    assert_eq!(report.offered(), total);
}
