//! Differential family for the incremental-update subsystem
//! ([`jitspmm::update`]): every scenario × delta-kind combination must
//! produce outputs **bit-identical** to compiling the merged matrix from
//! scratch, on all three serving paths — blocking execute, batch execute,
//! and the live-swap path behind [`SpmmServer::serve_controlled`] — and the
//! incremental path must recompile only the shards a delta touches (the
//! rest adopt their compiled cores pointer-identically, answered by kernel
//! cache hits, not new stores).

use jitspmm::serve::{AdmissionPolicy, ServeOptions, ServerRequest, SpmmServer};
use jitspmm::shard::{plan_shards, ShardOptions, ShardedSpmm};
use jitspmm::{KernelCache, MutableSpmm, WorkerPool};
use jitspmm_integration_tests::{host_supports_jit, pathological, small_skewed, small_uniform};
use jitspmm_sparse::{CsrMatrix, DeltaBatch, DenseMatrix};
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 3;
const D: usize = 8;

fn scenarios() -> Vec<(&'static str, CsrMatrix<f32>)> {
    vec![("skewed", small_skewed()), ("uniform", small_uniform()), ("pathological", pathological())]
}

const DELTA_KINDS: [&str; 4] = ["insert", "delete", "value-update", "mixed"];

/// Build a deterministic delta of the requested kind against `base`:
/// inserts land on fresh coordinates, deletes and value-updates sample the
/// matrix's existing entries, mixed interleaves all three.
fn delta_for(kind: &str, base: &CsrMatrix<f32>) -> DeltaBatch<f32> {
    let (nrows, ncols) = (base.nrows(), base.ncols());
    let existing: Vec<(usize, usize)> = base.iter().map(|(r, c, _)| (r, c)).collect();
    let mut delta = DeltaBatch::new();
    match kind {
        "insert" => {
            for k in 0..25usize {
                delta.upsert((k * 13 + 1) % nrows, (k * 29 + 3) % ncols, k as f32 * 0.5 + 0.25);
            }
        }
        "delete" => {
            for (r, c) in existing.iter().step_by(17) {
                delta.delete(*r, *c);
            }
        }
        "value-update" => {
            for (i, (r, c)) in existing.iter().step_by(11).enumerate() {
                delta.upsert(*r, *c, i as f32 - 4.5);
            }
        }
        "mixed" => {
            for k in 0..10usize {
                delta.upsert((k * 37 + 2) % nrows, (k * 17 + 5) % ncols, 1.5 - k as f32);
            }
            for (r, c) in existing.iter().step_by(23) {
                delta.delete(*r, *c);
            }
            for (r, c) in existing.iter().skip(1).step_by(31) {
                delta.upsert(*r, *c, 9.75);
            }
        }
        other => panic!("unknown delta kind {other}"),
    }
    delta
}

/// Blocking and batch paths: for every scenario × delta kind, the updated
/// engine must match a from-scratch compile of the merged matrix bit for
/// bit, and its merged view must equal the reference merge.
#[test]
fn incremental_update_matches_from_scratch_blocking_and_batch() {
    if !host_supports_jit() {
        return;
    }
    let pool = WorkerPool::new(2);
    for (name, base) in scenarios() {
        for kind in DELTA_KINDS {
            let delta = delta_for(kind, &base);
            let engine = MutableSpmm::compile(&base, SHARDS, 1, D, pool.clone()).unwrap();
            let report = engine.apply(&delta).unwrap();
            assert_eq!(report.revision, 1, "{name}/{kind}");
            let merged = base.apply_delta(&delta).unwrap();
            assert_eq!(engine.merged_matrix(), merged, "{name}/{kind}: merged view");
            let plan = plan_shards(&merged, SHARDS, 1).unwrap();
            let fresh = ShardedSpmm::compile(&plan, D, pool.clone()).unwrap();

            let x = DenseMatrix::random(base.ncols(), D, 7);
            let (y_inc, _) = pool.scope(|s| engine.execute(s, &x)).unwrap();
            let (y_ref, _) = pool.scope(|s| fresh.execute(s, &x)).unwrap();
            assert_eq!(y_inc.max_abs_diff(&y_ref), 0.0, "{name}/{kind}: blocking path");

            let xs: Vec<DenseMatrix<f32>> =
                (0..3).map(|seed| DenseMatrix::random(base.ncols(), D, seed)).collect();
            let (ys_inc, _) = pool.scope(|s| engine.execute_batch(s, &xs)).unwrap();
            let (ys_ref, _) = pool.scope(|s| fresh.execute_batch(s, &xs)).unwrap();
            for (i, (yi, yr)) in ys_inc.iter().zip(&ys_ref).enumerate() {
                assert_eq!(yi.max_abs_diff(yr), 0.0, "{name}/{kind}: batch input {i}");
            }
        }
    }
}

/// The live-serving path: a mutable engine behind
/// [`SpmmServer::serve_controlled`] takes a delta mid-session via
/// [`jitspmm::serve::ControlHandle::apply_update`]. Requests completed
/// before the update must match a from-scratch compile of the base matrix;
/// requests admitted after the revision bump must match a from-scratch
/// compile of the merged matrix — bit for bit in both epochs.
#[test]
fn live_update_behind_serve_controlled_is_bit_identical() {
    if !host_supports_jit() {
        return;
    }
    let pool = WorkerPool::new(2);
    for (name, base) in scenarios() {
        let delta = delta_for("mixed", &base);
        let merged = base.apply_delta(&delta).unwrap();
        let plan_base = plan_shards(&base, SHARDS, 1).unwrap();
        let fresh_base = ShardedSpmm::compile(&plan_base, D, pool.clone()).unwrap();
        let plan_merged = plan_shards(&merged, SHARDS, 1).unwrap();
        let fresh_merged = ShardedSpmm::compile(&plan_merged, D, pool.clone()).unwrap();
        let inputs: Vec<DenseMatrix<f32>> =
            (0..6).map(|seed| DenseMatrix::random(base.ncols(), D, 40 + seed)).collect();
        let mut expected = Vec::new();
        for (i, x) in inputs.iter().enumerate() {
            let reference = if i < 3 { &fresh_base } else { &fresh_merged };
            let (y, _) = pool.scope(|s| reference.execute(s, x)).unwrap();
            expected.push(y);
        }

        let server: SpmmServer<'_, f32> = SpmmServer::with_pool(pool.clone());
        let mutable = MutableSpmm::compile(&base, SHARDS, 1, D, pool.clone()).unwrap();
        let id = server.add_mutable(mutable).unwrap();
        let control = server.control();
        let mut responses = Vec::new();
        let inputs_ref = &inputs;
        let producer_control = control.clone();
        let producer_delta = delta.clone();
        let (report, ()) = server
            .serve_controlled(
                ServeOptions::new(AdmissionPolicy::blocking(8)),
                move |sender| {
                    for x in &inputs_ref[..3] {
                        sender.send_request(ServerRequest::new(id, x.clone())).unwrap();
                    }
                    // Let the pre-update requests finish on the old matrix
                    // before the swap, so each epoch's expectation is exact.
                    assert!(producer_control.wait_quiescent_timeout(Duration::from_secs(30)));
                    assert!(producer_control.apply_update(id, producer_delta));
                    assert!(producer_control.wait_revision(id, 1, Duration::from_secs(30)));
                    for x in &inputs_ref[3..] {
                        sender.send_request(ServerRequest::new(id, x.clone())).unwrap();
                    }
                },
                |response| responses.push(response),
            )
            .unwrap();
        assert_eq!(report.requests, 6, "{name}: all requests completed");
        assert_eq!(control.engine_revision(id), Some(1), "{name}");
        assert_eq!(control.update_counts(), (1, 0), "{name}");
        responses.sort_by_key(|r| r.request());
        for (i, response) in responses.iter().enumerate() {
            assert!(response.is_completed(), "{name}: request {i}");
            assert_eq!(
                response.output().max_abs_diff(&expected[i]),
                0.0,
                "{name}: request {i} ({} the update) must be bit-identical",
                if i < 3 { "before" } else { "after" }
            );
        }
    }
}

/// Untouched-shard stability under a kernel cache: a single-shard delta
/// recompiles exactly one shard; every other shard adopts its compiled core
/// pointer-identically and re-probes the cache as a **hit** (refreshing the
/// entry), never as a new store.
#[test]
fn untouched_shards_reuse_cores_and_hit_the_kernel_cache() {
    if !host_supports_jit() {
        return;
    }
    let dir =
        std::env::temp_dir().join(format!("jitspmm-update-diff-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = KernelCache::open(&dir);
    let pool = WorkerPool::new(2);
    let base = small_uniform();
    let options = ShardOptions::new().kernel_cache(Arc::clone(&cache));
    let engine = MutableSpmm::compile_with(&base, 4, 1, D, pool.clone(), options).unwrap();
    let shards = engine.shards();
    assert!(shards >= 2, "the scenario must actually shard");
    let before_cores = engine.core_ids();
    let before = cache.stats();

    // Touch only row 0 — the first shard.
    let mut delta = DeltaBatch::new();
    delta.upsert(0, 5, 2.5);
    let report = engine.apply(&delta).unwrap();
    assert_eq!(report.touched_shards, 1);
    assert_eq!(report.rebuilt_shards, 1);
    assert_eq!(report.reused_shards, shards - 1);

    let after_cores = engine.core_ids();
    assert_ne!(before_cores[0], after_cores[0], "the touched shard recompiles");
    assert_eq!(&before_cores[1..], &after_cores[1..], "untouched cores adopt pointer-identically");

    let after = cache.stats();
    assert_eq!(
        after.hits - before.hits,
        (shards - 1) as u64,
        "each untouched shard answers its cache probe with a hit"
    );
    assert_eq!(after.stores - before.stores, 1, "only the touched shard stores a new kernel");

    // And the updated engine still matches a from-scratch compile.
    let merged = base.apply_delta(&delta).unwrap();
    let plan = plan_shards(&merged, 4, 1).unwrap();
    let fresh = ShardedSpmm::compile(&plan, D, pool.clone()).unwrap();
    let x = DenseMatrix::random(base.ncols(), D, 3);
    let (y_inc, _) = pool.scope(|s| engine.execute(s, &x)).unwrap();
    let (y_ref, _) = pool.scope(|s| fresh.execute(s, &x)).unwrap();
    assert_eq!(y_inc.max_abs_diff(&y_ref), 0.0);
    let _ = std::fs::remove_dir_all(&dir);
}
