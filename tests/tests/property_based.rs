//! Property-based integration tests (proptest): randomized matrices, column
//! counts and strategies must always produce output identical to the
//! reference implementation, and core data-structure invariants must hold.

use jitspmm::serve::{ServerRequest, SpmmServer};
use jitspmm::{JitSpmmBuilder, Strategy, WorkerPool};
use jitspmm_integration_tests::host_supports_jit;
use jitspmm_sparse::{CooMatrix, CsrMatrix, DeltaBatch, DenseMatrix};
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

/// Strategy generating an arbitrary small sparse matrix as triplets.
fn arb_matrix() -> impl PropStrategy<Value = (usize, usize, Vec<(usize, usize, f32)>)> {
    (1usize..60, 1usize..60).prop_flat_map(|(nrows, ncols)| {
        let entries = proptest::collection::vec((0..nrows, 0..ncols, -4.0f32..4.0f32), 0..200);
        (Just(nrows), Just(ncols), entries)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// COO → CSR conversion preserves the per-cell sum of duplicates and the
    /// declared shape.
    #[test]
    fn coo_to_csr_preserves_entries((nrows, ncols, entries) in arb_matrix()) {
        let mut coo = CooMatrix::<f32>::new(nrows, ncols);
        for &(r, c, v) in &entries {
            coo.push(r, c, v);
        }
        let csr = coo.to_csr();
        prop_assert_eq!(csr.nrows(), nrows);
        prop_assert_eq!(csr.ncols(), ncols);
        // Every stored value equals the sum of the triplets at that cell.
        let mut expected = std::collections::HashMap::new();
        for &(r, c, v) in &entries {
            *expected.entry((r, c)).or_insert(0.0f32) += v;
        }
        for (r, c, v) in csr.iter() {
            let e = expected.get(&(r, c)).copied().unwrap_or(0.0);
            prop_assert!((v - e).abs() < 1e-4, "cell ({}, {}): {} vs {}", r, c, v, e);
        }
        prop_assert_eq!(csr.nnz(), expected.len());
    }

    /// Transposing twice is the identity.
    #[test]
    fn transpose_is_involutive((nrows, ncols, entries) in arb_matrix()) {
        let csr = CsrMatrix::from_triplets(nrows, ncols, &entries).unwrap();
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    /// The reference SpMM is linear: A(x + y) = Ax + Ay.
    #[test]
    fn reference_spmm_is_linear((nrows, ncols, entries) in arb_matrix(), d in 1usize..6) {
        let a = CsrMatrix::from_triplets(nrows, ncols, &entries).unwrap();
        let x1 = DenseMatrix::<f32>::random(ncols, d, 1);
        let x2 = DenseMatrix::<f32>::random(ncols, d, 2);
        let sum = DenseMatrix::from_vec(
            ncols,
            d,
            x1.as_slice().iter().zip(x2.as_slice()).map(|(a, b)| a + b).collect(),
        );
        let y1 = a.spmm_reference(&x1);
        let y2 = a.spmm_reference(&x2);
        let ysum = a.spmm_reference(&sum);
        let combined = DenseMatrix::from_vec(
            nrows,
            d,
            y1.as_slice().iter().zip(y2.as_slice()).map(|(a, b)| a + b).collect(),
        );
        prop_assert!(ysum.approx_eq(&combined, 1e-3));
    }

    /// The JIT engine agrees with the reference for arbitrary matrices,
    /// column counts and strategies.
    #[test]
    fn jit_matches_reference(
        (nrows, ncols, entries) in arb_matrix(),
        d in 1usize..40,
        strategy_idx in 0usize..4,
        threads in 1usize..5,
    ) {
        if !host_supports_jit() {
            return Ok(());
        }
        let strategy = [
            Strategy::RowSplitStatic,
            Strategy::RowSplitDynamic { batch: 7 },
            Strategy::NnzSplit,
            Strategy::MergeSplit,
        ][strategy_idx];
        let a = CsrMatrix::from_triplets(nrows, ncols, &entries).unwrap();
        let x = DenseMatrix::<f32>::random(ncols, d, 42);
        let expected = a.spmm_reference(&x);
        let engine = JitSpmmBuilder::new()
            .strategy(strategy)
            .threads(threads)
            .build(&a, d)
            .unwrap();
        let (y, _) = engine.execute(&x).unwrap();
        prop_assert!(
            y.approx_eq(&expected, 1e-3),
            "strategy {:?}, d {}, diff {}", strategy, d, y.max_abs_diff(&expected)
        );
    }

    /// Two engines executed concurrently through `execute_async` — lane-capped
    /// onto one shared pool — must produce exactly the results their blocking,
    /// sequential executions produce. Row-wise partitioning computes every
    /// output row identically regardless of which lane claims it, so the
    /// comparison is bitwise; any lane-capping or wake-chain race that lets
    /// one job's tasks bleed into the other's buffers (or drops tasks) breaks
    /// it.
    #[test]
    fn async_overlap_matches_sequential(
        (nrows1, ncols1, entries1) in arb_matrix(),
        (nrows2, ncols2, entries2) in arb_matrix(),
        d in 1usize..24,
        threads1 in 1usize..3,
        threads2 in 1usize..3,
    ) {
        if !host_supports_jit() {
            return Ok(());
        }
        let a1 = CsrMatrix::from_triplets(nrows1, ncols1, &entries1).unwrap();
        let a2 = CsrMatrix::from_triplets(nrows2, ncols2, &entries2).unwrap();
        let pool = WorkerPool::new(2);
        let e1 = JitSpmmBuilder::new()
            .strategy(Strategy::RowSplitDynamic { batch: 5 })
            .threads(threads1)
            .pool(pool.clone())
            .build(&a1, d)
            .unwrap();
        let e2 = JitSpmmBuilder::new()
            .strategy(Strategy::RowSplitStatic)
            .threads(threads2)
            .pool(pool.clone())
            .build(&a2, d)
            .unwrap();
        let x1 = DenseMatrix::<f32>::random(ncols1, d, 17);
        let x2 = DenseMatrix::<f32>::random(ncols2, d, 18);
        let (s1, _) = e1.execute(&x1).unwrap();
        let s1 = s1.into_dense();
        let (s2, _) = e2.execute(&x2).unwrap();
        let s2 = s2.into_dense();
        // Several rounds per case: races need repetition to surface.
        pool.scope(|scope| -> Result<(), TestCaseError> {
            for round in 0..4 {
                let h1 = e1.execute_async(scope, &x1).unwrap();
                let h2 = e2.execute_async(scope, &x2).unwrap();
                let (y2, _) = h2.wait();
                let (y1, _) = h1.wait();
                prop_assert!(y1 == s1, "engine 1 diverged under overlap (round {})", round);
                prop_assert!(y2 == s2, "engine 2 diverged under overlap (round {})", round);
            }
            Ok(())
        })?;
    }

    /// Deferred pool jobs never lose or duplicate tasks, whatever the task
    /// count, lane cap and number of concurrently outstanding handles.
    #[test]
    fn submitted_jobs_run_every_task_exactly_once(
        tasks in 1usize..200,
        max_lanes in 0usize..6,
        jobs in 1usize..5,
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = WorkerPool::new(3);
        let counters: Vec<Vec<AtomicUsize>> = (0..jobs)
            .map(|_| (0..tasks).map(|_| AtomicUsize::new(0)).collect())
            .collect();
        let specs = jitspmm::JobSpec::new(tasks).max_lanes(max_lanes);
        let tasks_fns: Vec<_> = counters
            .iter()
            .map(|slots| move |i: usize| {
                slots[i].fetch_add(1, Ordering::Relaxed);
            })
            .collect();
        pool.scope(|scope| {
            let handles: Vec<_> = tasks_fns.iter().map(|t| scope.submit(specs, t)).collect();
            for handle in handles {
                handle.wait();
            }
        });
        for (j, slots) in counters.iter().enumerate() {
            for (i, slot) in slots.iter().enumerate() {
                prop_assert_eq!(slot.load(Ordering::Relaxed), 1, "job {} task {}", j, i);
            }
        }
    }

    /// A batched pipeline over an arbitrary matrix, batch size, pipeline
    /// depth and strategy produces exactly — bitwise — the outputs of the
    /// blocking per-input path, in input order. Any slot-counter mix-up,
    /// payload reuse bug or output-buffer swap breaks this.
    #[test]
    fn execute_batch_matches_sequential(
        (nrows, ncols, entries) in arb_matrix(),
        d in 1usize..24,
        batch_size in 0usize..9,
        depth in 1usize..4,
        strategy_idx in 0usize..2,
        threads in 1usize..3,
    ) {
        if !host_supports_jit() {
            return Ok(());
        }
        let strategy = if strategy_idx == 0 {
            Strategy::RowSplitDynamic { batch: 5 }
        } else {
            Strategy::RowSplitStatic
        };
        let a = CsrMatrix::from_triplets(nrows, ncols, &entries).unwrap();
        let pool = WorkerPool::new(2);
        let engine = JitSpmmBuilder::new()
            .strategy(strategy)
            .threads(threads)
            .pool(pool.clone())
            .build(&a, d)
            .unwrap();
        let inputs: Vec<DenseMatrix<f32>> =
            (0..batch_size).map(|i| DenseMatrix::random(ncols, d, 300 + i as u64)).collect();
        let sequential: Vec<DenseMatrix<f32>> =
            inputs.iter().map(|x| engine.execute(x).unwrap().0.into_dense()).collect();
        // Once through the collecting API...
        let (outputs, report) = pool
            .scope(|scope| engine.execute_batch(scope, &inputs))
            .unwrap();
        prop_assert_eq!(outputs.len(), batch_size);
        prop_assert_eq!(report.inputs, batch_size);
        for (i, y) in outputs.iter().enumerate() {
            prop_assert!(**y == sequential[i], "batched output {} diverged", i);
        }
        drop(outputs);
        // ...and once through the incremental stream at the drawn depth.
        pool.scope(|scope| -> Result<(), TestCaseError> {
            let mut stream = engine.batch_stream(scope, depth).unwrap();
            let mut streamed = Vec::new();
            for x in &inputs {
                if let Some((y, _)) = stream.push(x).unwrap() {
                    streamed.push(y.into_dense());
                }
            }
            let (rest, report) = stream.finish();
            streamed.extend(rest.into_iter().map(|(y, _)| y.into_dense()));
            prop_assert_eq!(report.inputs, batch_size);
            for (i, y) in streamed.iter().enumerate() {
                prop_assert!(*y == sequential[i], "streamed output {} diverged", i);
            }
            Ok(())
        })?;
    }

    /// An arbitrary interleaving of requests across two engines, served
    /// through the mixed-stream router, produces exactly — bitwise — the
    /// outputs of per-engine sequential execution, each routed to the right
    /// engine and in per-engine submission order. Any routing mix-up (a
    /// request landing on the wrong engine's pipeline, slot payloads crossing
    /// engines, responses mis-ordered) breaks this.
    #[test]
    fn mixed_serving_matches_sequential(
        (nrows1, ncols1, entries1) in arb_matrix(),
        (nrows2, ncols2, entries2) in arb_matrix(),
        d1 in 1usize..16,
        d2 in 1usize..16,
        pattern in proptest::collection::vec(0usize..2, 0..24),
        depth in 0usize..4,
    ) {
        if !host_supports_jit() {
            return Ok(());
        }
        let a1 = CsrMatrix::from_triplets(nrows1, ncols1, &entries1).unwrap();
        let a2 = CsrMatrix::from_triplets(nrows2, ncols2, &entries2).unwrap();
        let pool = WorkerPool::new(2);
        let engines = vec![
            JitSpmmBuilder::new()
                .strategy(Strategy::RowSplitDynamic { batch: 5 })
                .threads(1)
                .pool(pool.clone())
                .build(&a1, d1)
                .unwrap(),
            JitSpmmBuilder::new()
                .strategy(Strategy::RowSplitStatic)
                .threads(1)
                .pool(pool.clone())
                .build(&a2, d2)
                .unwrap(),
        ];
        // The drawn interleaving: requests tagged 0 or 1 in arbitrary order.
        let inputs: Vec<(usize, DenseMatrix<f32>)> = pattern
            .iter()
            .enumerate()
            .map(|(i, &engine)| {
                let ncols = if engine == 0 { ncols1 } else { ncols2 };
                let d = if engine == 0 { d1 } else { d2 };
                (engine, DenseMatrix::<f32>::random(ncols, d, 7_000 + i as u64))
            })
            .collect();
        // Reference: each request through its engine's blocking execute, in
        // per-engine submission order.
        let mut expected: Vec<Vec<DenseMatrix<f32>>> = vec![Vec::new(), Vec::new()];
        for (engine, x) in &inputs {
            expected[*engine].push(engines[*engine].execute(x).unwrap().0.into_dense());
        }
        let server = SpmmServer::new(engines).unwrap();
        let requests: Vec<ServerRequest<f32>> = inputs
            .iter()
            .map(|(engine, x)| ServerRequest::new(*engine, x.clone()))
            .collect();
        let (responses, report) = server.serve_batch(depth, requests).unwrap();
        prop_assert_eq!(responses.len(), inputs.len());
        prop_assert_eq!(report.requests, inputs.len());
        for (g, response) in responses.iter().enumerate() {
            prop_assert_eq!(response.request(), g, "sorted by global submission order");
            prop_assert_eq!(response.engine(), inputs[g].0, "request {} routed wrong", g);
            prop_assert!(
                **response.output() == expected[response.engine()][response.index()],
                "request {} (engine {}, index {}) diverged from sequential execution",
                g, response.engine(), response.index()
            );
        }
        for (engine_report, engine_expected) in report.per_engine.iter().zip(&expected) {
            prop_assert_eq!(engine_report.inputs, engine_expected.len());
        }
    }

    /// Sharded execution is shard-count invariant: whatever K the planner is
    /// asked for, the stitched result is bit-identical to the unsharded
    /// engine's output (per-row arithmetic does not depend on which shard —
    /// or which compiled kernel copy — computes a row), and the plan always
    /// covers every row exactly once.
    #[test]
    fn sharded_execution_is_shard_count_invariant(
        (nrows, ncols, entries) in arb_matrix(),
        d in 1usize..6,
        k1 in 1usize..7,
        k2 in 1usize..7,
    ) {
        if !host_supports_jit() {
            return Ok(());
        }
        let a = CsrMatrix::from_triplets(nrows, ncols, &entries).unwrap();
        let pool = WorkerPool::new(2);
        let x = DenseMatrix::<f32>::random(ncols, d, 17);
        let engine = JitSpmmBuilder::new().pool(pool.clone()).threads(2).build(&a, d).unwrap();
        let (expected, _) = engine.execute(&x).unwrap();
        for k in [k1, k2] {
            let plan = jitspmm::shard::plan_shards(&a, k, 2).unwrap();
            let mut cursor = 0usize;
            for shard in plan.shards() {
                prop_assert_eq!(shard.rows.start, cursor);
                cursor = shard.rows.end;
            }
            prop_assert_eq!(cursor, nrows);
            let sharded = jitspmm::shard::ShardedSpmm::compile(&plan, d, pool.clone()).unwrap();
            let (y, report) = pool.scope(|scope| sharded.execute(scope, &x)).unwrap();
            prop_assert_eq!(report.shards, plan.len());
            prop_assert!(
                *y == *expected,
                "k = {}: sharded result diverged from unsharded (max diff {})",
                k, y.max_abs_diff(&expected)
            );
        }
    }

    /// A JIT engine compiled against a zero-copy [`CsrMatrix::share_rows`]
    /// view is bit-identical to one compiled against a deep owned copy of
    /// the same rows: borrowed storage changes where the nnz arrays live
    /// (and how many bytes a shard plan holds), never the bytes the
    /// generated code embeds or reads.
    #[test]
    fn borrowed_view_matches_owned(
        (nrows, ncols, entries) in arb_matrix(),
        d in 1usize..24,
        lo in 0usize..100,
        hi in 0usize..100,
        threads in 1usize..3,
    ) {
        if !host_supports_jit() {
            return Ok(());
        }
        let a = CsrMatrix::from_triplets(nrows, ncols, &entries).unwrap();
        let (mut start, mut end) = (lo * nrows / 100, hi * nrows / 100);
        if start > end {
            std::mem::swap(&mut start, &mut end);
        }
        if start == end {
            // An engine needs at least one row; widen the window by one.
            end = (end + 1).min(nrows);
            start = end - 1;
        }
        let view = a.share_rows(start, end);
        prop_assert!(view.shares_storage_with(&a), "share_rows must not copy nnz arrays");
        let owned = CsrMatrix::from_raw_parts(
            view.nrows(),
            view.ncols(),
            view.row_ptr().to_vec(),
            view.col_indices().to_vec(),
            view.values().to_vec(),
        )
        .unwrap();
        prop_assert!(!owned.shares_storage_with(&a));
        let x = DenseMatrix::<f32>::random(ncols, d, 23);
        let from_view = JitSpmmBuilder::new().threads(threads).build(&view, d).unwrap();
        let from_owned = JitSpmmBuilder::new().threads(threads).build(&owned, d).unwrap();
        let (yv, _) = from_view.execute(&x).unwrap();
        let (yo, _) = from_owned.execute(&x).unwrap();
        prop_assert!(
            *yv == *yo,
            "rows {}..{}: view-compiled engine diverged from owned-compiled (max diff {})",
            start, end, yv.max_abs_diff(&yo)
        );
    }

    /// [`CsrMatrix::apply_delta`] matches rebuilding the merged cell map from
    /// scratch: upserts overwrite, deletes remove (absent cells are a no-op),
    /// the last op at a position wins, and every untouched entry carries over
    /// bit for bit. The incremental-update engine stands on this merge.
    #[test]
    fn apply_delta_matches_rebuild(
        (nrows, ncols, entries) in arb_matrix(),
        // (row, col, value, kind): kind 0 is a delete, anything else an
        // upsert of `value` — the stub proptest has no Option strategy.
        ops in proptest::collection::vec(
            (0usize..60, 0usize..60, -4.0f32..4.0f32, 0usize..5),
            0..80,
        ),
    ) {
        let base = CsrMatrix::from_triplets(nrows, ncols, &entries).unwrap();
        let mut delta = DeltaBatch::new();
        let mut cells: std::collections::HashMap<(usize, usize), f32> =
            base.iter().map(|(r, c, v)| ((r, c), v)).collect();
        for &(r, c, v, kind) in &ops {
            let (r, c) = (r % nrows, c % ncols);
            if kind == 0 {
                delta.delete(r, c);
                cells.remove(&(r, c));
            } else {
                delta.upsert(r, c, v);
                cells.insert((r, c), v);
            }
        }
        let merged = base.apply_delta(&delta).unwrap();
        prop_assert_eq!(merged.nnz(), cells.len());
        let triplets: Vec<(usize, usize, f32)> =
            cells.into_iter().map(|((r, c), v)| (r, c, v)).collect();
        let expected = CsrMatrix::from_triplets(nrows, ncols, &triplets).unwrap();
        prop_assert_eq!(merged, expected);
    }

    /// Workload partitions always cover every row exactly once, regardless of
    /// strategy and thread count.
    #[test]
    fn partitions_cover_rows(
        (nrows, ncols, entries) in arb_matrix(),
        threads in 1usize..9,
        strategy_idx in 0usize..3,
    ) {
        let strategy = [Strategy::RowSplitStatic, Strategy::NnzSplit, Strategy::MergeSplit][strategy_idx];
        let a = CsrMatrix::from_triplets(nrows, ncols, &entries).unwrap();
        let p = jitspmm::schedule::partition(&a, strategy, threads);
        let mut covered = 0usize;
        let mut cursor = 0usize;
        for r in &p.ranges {
            prop_assert_eq!(r.start, cursor);
            cursor = r.end;
            covered += r.len();
        }
        prop_assert_eq!(cursor, nrows);
        prop_assert_eq!(covered, nrows);
    }
}
