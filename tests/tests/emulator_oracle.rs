//! Integration tests using the emulator as an independent oracle for the
//! generated kernels: the emulated execution of the exact JIT machine code
//! must produce the same output as native execution and as the reference,
//! and the measured event counts must track the analytic models.

use jitspmm::profile::{self, measure_jit_emulated};
use jitspmm::{IsaLevel, JitSpmmBuilder, Strategy};
use jitspmm_integration_tests::{host_supports_jit, pathological, small_skewed};
use jitspmm_sparse::{generate, DenseMatrix};

#[test]
fn emulated_kernel_output_matches_native_and_reference() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_skewed();
    for d in [8usize, 16, 45] {
        let x = DenseMatrix::random(a.ncols(), d, 7);
        let expected = a.spmm_reference(&x);
        let engine = JitSpmmBuilder::new()
            .strategy(Strategy::RowSplitStatic)
            .threads(1)
            .build(&a, d)
            .unwrap();

        // Native execution.
        let mut y_native = DenseMatrix::zeros(a.nrows(), d);
        engine.execute_single_thread(&x, &mut y_native).unwrap();
        assert!(y_native.approx_eq(&expected, 1e-4), "native, d = {d}");

        // Emulated execution of the same machine code.
        let mut y_emulated = DenseMatrix::zeros(a.nrows(), d);
        let counts = measure_jit_emulated(&engine, &x, &mut y_emulated).unwrap();
        assert!(y_emulated.approx_eq(&expected, 1e-4), "emulated, d = {d}");
        assert_eq!(y_native, y_emulated, "bit-exact agreement expected, d = {d}");
        assert!(counts.instructions > a.nnz() as u64, "d = {d}: {counts:?}");
        assert!(counts.memory_loads > a.nnz() as u64);
        assert!(counts.memory_stores as usize >= a.nrows());
    }
}

#[test]
fn emulated_dynamic_kernel_also_matches() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = pathological();
    let d = 16;
    let x = DenseMatrix::random(a.ncols(), d, 3);
    let expected = a.spmm_reference(&x);
    let engine = JitSpmmBuilder::new()
        .strategy(Strategy::RowSplitDynamic { batch: 32 })
        .threads(1)
        .build(&a, d)
        .unwrap();
    let mut y = DenseMatrix::zeros(a.nrows(), d);
    let counts = measure_jit_emulated(&engine, &x, &mut y).unwrap();
    assert!(y.approx_eq(&expected, 1e-4));
    // The dynamic claim loop executes one lock xadd per batch.
    let batches = a.nrows().div_ceil(32) as u64;
    assert!(counts.memory_stores >= batches, "{counts:?}");
}

#[test]
fn measured_counts_track_the_analytic_model() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::rmat::<f32>(9, 8_000, generate::RmatConfig::WEB, 2);
    let d = 16;
    let x = DenseMatrix::random(a.ncols(), d, 1);
    let features = jitspmm::CpuFeatures::detect();
    let isa = features.best_isa();
    let engine = JitSpmmBuilder::new()
        .strategy(Strategy::RowSplitStatic)
        .isa(isa)
        .threads(1)
        .build(&a, d)
        .unwrap();
    let mut y = DenseMatrix::zeros(a.nrows(), d);
    let measured = measure_jit_emulated(&engine, &x, &mut y).unwrap();
    let modeled = profile::model_jit::<f32>(&a, d, isa);
    // The analytic model should be within a factor of two of the measured
    // instruction stream on the dominant metrics.
    for (name, m, a) in [
        ("instructions", measured.instructions, modeled.instructions),
        ("loads", measured.memory_loads, modeled.memory_loads),
        ("branches", measured.branches, modeled.branches),
    ] {
        let ratio = m as f64 / a.max(1) as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "{name}: measured {m}, modeled {a}, ratio {ratio:.2}"
        );
    }
}

#[test]
fn emulated_scalar_tier_shows_table2_reductions() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    // A miniature Table II: single-thread scalar JIT versus the modeled
    // scalar AOT kernel on a web-crawl-like matrix with d = 8.
    let a = generate::rmat::<f32>(10, 12_000, generate::RmatConfig::WEB, 4);
    let d = 8;
    let x = DenseMatrix::random(a.ncols(), d, 9);
    let engine = JitSpmmBuilder::new()
        .strategy(Strategy::RowSplitStatic)
        .isa(IsaLevel::Scalar)
        .threads(1)
        .build(&a, d)
        .unwrap();
    let mut y = DenseMatrix::zeros(a.nrows(), d);
    let jit = measure_jit_emulated(&engine, &x, &mut y).unwrap();
    assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));

    let aot = profile::model_aot_scalar(&a, d);
    let load_reduction = aot.memory_loads as f64 / jit.memory_loads as f64;
    let inst_reduction = aot.instructions as f64 / jit.instructions as f64;
    let branch_reduction = aot.branches as f64 / jit.branches as f64;
    // Table II reports 2.4-2.7x fewer loads and 3.4-4.4x fewer instructions;
    // accept a generous band around those figures.
    assert!(load_reduction > 1.8, "load reduction = {load_reduction:.2}");
    assert!(inst_reduction > 2.5, "instruction reduction = {inst_reduction:.2}");
    assert!(branch_reduction > 1.2, "branch reduction = {branch_reduction:.2}");
}
