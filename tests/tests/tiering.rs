//! Integration tests for adaptive kernel tiering: tier-0 start, profiled
//! recompile, hot-swap between launches, and promotion through the serving
//! control plane.
//!
//! The contracts under test, end to end:
//!
//! - A tiered engine serves immediately on its tier-0 kernel, and tier-0
//!   results are bit-identical to a fixed scalar static-row-split engine
//!   (which in turn matches the reference implementation).
//! - Promotion never changes results: outputs after the hot-swap are
//!   bit-identical to a fixed engine compiled at the promoted
//!   configuration, and a promotion that keeps the ISA fixed is
//!   bit-identical across the swap boundary.
//! - The swap only happens between launches: an open batch stream defers
//!   installation, and the deferred core installs cleanly afterwards.
//! - A crash inside the recompile is contained: the engine keeps serving
//!   tier-0 forever and the serving session never notices.

use jitspmm::serve::{fault, AdmissionPolicy, ServeOptions, ServerRequest, SpmmServer};
use jitspmm::{
    plan_shards, IsaLevel, JitSpmmBuilder, KernelTier, ShardedSpmm, Strategy, TierPolicy,
    WorkerPool,
};
use jitspmm_integration_tests::{host_supports_jit, pathological, small_skewed, small_uniform};
use jitspmm_sparse::{CsrMatrix, DenseMatrix};
use proptest::prelude::*;

const D: usize = 4;

/// A tiered engine that can only promote by changing strategy: the scalar
/// pin keeps the promoted kernel's arithmetic identical to tier-0's, so
/// every comparison below is bit-for-bit on any host.
fn scalar_tiered<'a>(
    a: &'a CsrMatrix<f32>,
    pool: &WorkerPool,
    warmup: usize,
) -> jitspmm::JitSpmm<'a, f32> {
    JitSpmmBuilder::new()
        .pool(pool.clone())
        .strategy(Strategy::row_split_dynamic_default())
        .isa(IsaLevel::Scalar)
        .tiered(TierPolicy::new().warmup(warmup))
        .build(a, D)
        .unwrap()
}

#[test]
fn tier0_is_bit_identical_to_fixed_scalar_static_engine() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let pool = WorkerPool::new(2);
    // Scenario matrix: uniform, skewed and boundary-path sparsity, each
    // requesting a *different* configuration than tier-0 compiles.
    for (name, a) in
        [("uniform", small_uniform()), ("skewed", small_skewed()), ("pathological", pathological())]
    {
        let tiered = JitSpmmBuilder::new()
            .pool(pool.clone())
            .strategy(Strategy::row_split_dynamic_default())
            .tiered(TierPolicy::default())
            .build(&a, D)
            .unwrap();
        assert_eq!(tiered.tier(), KernelTier::Tier0, "{name}");
        assert_eq!(tiered.promotions(), 0, "{name}");
        // Tier-0 is always scalar + static row split, whatever was asked.
        let anchor = JitSpmmBuilder::new()
            .pool(pool.clone())
            .strategy(Strategy::RowSplitStatic)
            .isa(IsaLevel::Scalar)
            .build(&a, D)
            .unwrap();
        assert_eq!(anchor.tier(), KernelTier::Fixed, "{name}");
        let x = DenseMatrix::random(a.ncols(), D, 5);
        let (y_tiered, _) = tiered.execute(&x).unwrap();
        let (y_anchor, _) = anchor.execute(&x).unwrap();
        assert_eq!(tiered.tier(), KernelTier::Tier0, "{name}");
        assert_eq!(y_tiered.max_abs_diff(&y_anchor), 0.0, "{name}: tier-0 != fixed scalar");
        assert!(y_tiered.approx_eq(&a.spmm_reference(&x), 1e-4), "{name}: scalar anchor");
    }
}

#[test]
fn promoted_engine_is_bit_identical_to_fixed_engine_at_promoted_config() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_skewed();
    let pool = WorkerPool::new(2);
    // Host-default ISA: promotion may widen the ISA, so the comparison
    // target is a fixed engine built at whatever configuration the tier
    // actually promoted to (read back from the engine's meta).
    let tiered = JitSpmmBuilder::new()
        .pool(pool.clone())
        .strategy(Strategy::row_split_dynamic_default())
        .tiered(TierPolicy::new().warmup(3))
        .build(&a, D)
        .unwrap();
    let x = DenseMatrix::random(a.ncols(), D, 9);
    for _ in 0..3 {
        tiered.execute(&x).unwrap();
    }
    // Warmup full, but plain execute never swaps by itself: promotion is
    // explicit (promote_now) or driven by a serving session.
    assert_eq!(tiered.tier(), KernelTier::Tier0);
    assert!(tiered.promote_now(), "strategy change always qualifies");
    assert_eq!(tiered.tier(), KernelTier::Promoted);
    assert_eq!(tiered.promotions(), 1);
    let meta = tiered.meta();
    let twin = JitSpmmBuilder::new()
        .pool(pool.clone())
        .strategy(meta.strategy)
        .isa(meta.isa)
        .build(&a, D)
        .unwrap();
    let (y_promoted, _) = tiered.execute(&x).unwrap();
    let (y_twin, _) = twin.execute(&x).unwrap();
    assert_eq!(tiered.tier(), KernelTier::Promoted);
    assert_eq!(y_promoted.max_abs_diff(&y_twin), 0.0, "promoted != fixed twin");
    // promote_now is idempotent once promoted.
    assert!(tiered.promote_now());
    assert_eq!(tiered.promotions(), 1);
}

#[test]
fn open_stream_defers_install_and_results_stay_bit_identical_across_swap() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let pool = WorkerPool::new(2);
    let engine = scalar_tiered(&a, &pool, 1);
    let inputs: Vec<DenseMatrix<f32>> =
        (0..6).map(|seed| DenseMatrix::random(a.ncols(), D, 100 + seed)).collect();
    let expected: Vec<DenseMatrix<f32>> =
        inputs.iter().map(|x| (*engine.execute(x).unwrap().0).clone()).collect();
    // The warmup window is full; a stream now holds the launch lock, so
    // promote_now recompiles but must defer the install.
    let streamed: Vec<DenseMatrix<f32>> = engine
        .pool()
        .scope(|scope| {
            let mut stream = engine.batch_stream(scope, 2).unwrap();
            let mut outputs = Vec::new();
            for (i, x) in inputs.iter().enumerate() {
                if let Some((y, _)) = stream.push(x).unwrap() {
                    outputs.push((*y).clone());
                }
                if i == 2 {
                    assert!(!engine.promote_now(), "install must defer while a stream is open");
                    assert_eq!(engine.tier(), KernelTier::Tier0);
                }
            }
            let (rest, _) = stream.finish();
            outputs.extend(rest.into_iter().map(|(y, _)| (*y).clone()));
            outputs
        })
        .into_iter()
        .collect();
    for (y, e) in streamed.iter().zip(&expected) {
        assert_eq!(y.max_abs_diff(e), 0.0, "tier-0 stream output");
    }
    // The stream is closed: the already-built core installs now.
    assert!(engine.promote_now());
    assert_eq!(engine.tier(), KernelTier::Promoted);
    for (x, e) in inputs.iter().zip(&expected) {
        let (y, _) = engine.execute(x).unwrap();
        assert_eq!(y.max_abs_diff(e), 0.0, "post-swap output changed");
    }
}

#[test]
fn serve_controlled_promotes_mid_session_without_changing_outputs() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let b = small_skewed();
    let pool = WorkerPool::new(2);
    let tiered = scalar_tiered(&a, &pool, 2);
    let fixed = JitSpmmBuilder::new().pool(pool.clone()).build(&b, D).unwrap();
    let server = SpmmServer::new(vec![tiered, fixed]).unwrap();
    let total = 24usize;
    let inputs: Vec<(usize, DenseMatrix<f32>)> = (0..total)
        .map(|i| {
            let engine = if i % 3 == 2 { 1 } else { 0 };
            let cols = if engine == 0 { a.ncols() } else { b.ncols() };
            (engine, DenseMatrix::random(cols, D, 200 + i as u64))
        })
        .collect();
    // References from the engines *before* serving — engine 0 is on tier 0
    // here, and the scalar pin makes its promotion strategy-only, so the
    // comparison stays bit-for-bit across the mid-session swap.
    let expected: Vec<DenseMatrix<f32>> = inputs
        .iter()
        .map(|(engine, x)| (*server.single(*engine).unwrap().execute(x).unwrap().0).clone())
        .collect();
    let mut outputs: Vec<Option<(usize, DenseMatrix<f32>)>> = vec![None; total];
    let (report, ()) = server
        .serve_controlled(
            ServeOptions::new(AdmissionPolicy::blocking(4))
                .tiering(TierPolicy::new().warmup(2).foreground()),
            |sender| {
                for (engine, x) in inputs.iter().cloned() {
                    sender.send_request(ServerRequest::new(engine, x)).unwrap();
                }
            },
            |response| {
                assert!(response.is_completed());
                let slot = (response.engine(), (**response.output()).clone());
                outputs[response.request()] = Some(slot);
            },
        )
        .unwrap();
    assert_eq!(report.requests, total);
    assert!(report.promotions >= 1, "tiered engine must promote mid-session");
    assert_eq!(report.engine(0).unwrap().tier.label(), "promoted");
    assert_eq!(report.engine(0).unwrap().promotions, report.promotions);
    assert_eq!(report.engine(1).unwrap().tier.label(), "fixed");
    assert_eq!(report.engine(1).unwrap().promotions, 0);
    for (request, e) in expected.iter().enumerate() {
        let (engine, y) = outputs[request].as_ref().expect("every request answered");
        assert_eq!(*engine, inputs[request].0);
        assert_eq!(y.max_abs_diff(e), 0.0, "request {request}: output changed across swap");
    }
}

#[test]
fn background_recompile_rides_the_pool_and_keeps_results_correct() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let pool = WorkerPool::new(2);
    let engine = scalar_tiered(&a, &pool, 2);
    let server = SpmmServer::new(vec![engine]).unwrap();
    let inputs: Vec<DenseMatrix<f32>> =
        (0..16).map(|i| DenseMatrix::random(a.ncols(), D, 300 + i)).collect();
    let expected: Vec<DenseMatrix<f32>> =
        inputs.iter().map(|x| (*server.single(0).unwrap().execute(x).unwrap().0).clone()).collect();
    let mut outputs: Vec<Option<DenseMatrix<f32>>> = vec![None; inputs.len()];
    let (report, ()) = server
        .serve_controlled(
            // Default policy: the recompile runs as a lane-capped pool job.
            // Whether it finishes before the session ends is a race the
            // contract is indifferent to — outputs are bit-identical either
            // way, which is exactly what this test pins down.
            ServeOptions::new(AdmissionPolicy::blocking(4)).tiering(TierPolicy::new().warmup(2)),
            |sender| {
                for x in inputs.iter().cloned() {
                    sender.send_request(ServerRequest::new(0, x)).unwrap();
                }
            },
            |response| {
                assert!(response.is_completed());
                outputs[response.request()] = Some((**response.output()).clone());
            },
        )
        .unwrap();
    assert_eq!(report.requests, inputs.len());
    let tier = report.engine(0).unwrap().tier;
    assert!(
        matches!(tier, KernelTier::Tier0 | KernelTier::Promoted),
        "a tiered engine never reports a fixed tier"
    );
    assert_eq!(report.promotions, report.engine(0).unwrap().promotions);
    for (request, e) in expected.iter().enumerate() {
        let y = outputs[request].as_ref().expect("every request answered");
        assert_eq!(y.max_abs_diff(e), 0.0, "request {request}");
    }
}

#[test]
fn sharded_engines_promote_per_shard_through_the_server() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_skewed();
    let pool = WorkerPool::new(2);
    let plan = plan_shards(&a, 2, 1).unwrap();
    let sharded =
        ShardedSpmm::compile_tiered(&plan, D, pool.clone(), TierPolicy::new().warmup(2)).unwrap();
    assert_eq!(sharded.tier(), KernelTier::Tier0);
    // A server cannot be empty; the sharded engine registers behind id 1.
    let fixed = JitSpmmBuilder::new().pool(pool.clone()).build(&a, D).unwrap();
    let server = SpmmServer::new(vec![fixed]).unwrap();
    let id = server.add_sharded(sharded).unwrap();
    assert_eq!(id, 1);
    let inputs: Vec<DenseMatrix<f32>> =
        (0..16).map(|i| DenseMatrix::random(a.ncols(), D, 400 + i)).collect();
    let expected: Vec<DenseMatrix<f32>> = inputs.iter().map(|x| a.spmm_reference(x)).collect();
    let mut completed = 0usize;
    let (report, ()) = server
        .serve_controlled(
            ServeOptions::new(AdmissionPolicy::blocking(4))
                .tiering(TierPolicy::new().warmup(2).foreground()),
            |sender| {
                for x in inputs.iter().cloned() {
                    sender.send_request(ServerRequest::new(id, x)).unwrap();
                }
            },
            |response| {
                assert!(response.is_completed());
                let e = &expected[response.request()];
                // Shards may widen their ISA independently, so the anchor
                // here is the reference result, not bit-equality.
                assert!(response.output().approx_eq(e, 1e-4));
                completed += 1;
            },
        )
        .unwrap();
    assert_eq!(completed, inputs.len());
    // Every shard sees every request, so both shards fill their warmup
    // windows; strategy-change promotions always qualify, ISA widenings
    // must clear the modeled-gain bar — at least one shard promotes.
    assert!(report.promotions >= 1, "no shard promoted");
    assert_eq!(report.engine(id).unwrap().promotions, report.promotions);
    let tier = report.engine(id).unwrap().tier;
    assert!(matches!(tier, KernelTier::Tier0 | KernelTier::Promoted));
    assert_eq!(report.engine(0).unwrap().tier.label(), "fixed");
}

#[test]
fn recompile_panic_parks_the_engine_on_tier0_for_good() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let _guard = fault::exclusive();
    let a = small_uniform();
    let pool = WorkerPool::new(2);
    let engine = scalar_tiered(&a, &pool, 1);
    let x = DenseMatrix::random(a.ncols(), D, 17);
    // Reference before arming; the recompile countdown is independent of
    // kernel entries, but keeping the discipline of fault.rs anyway.
    let (expected, _) = engine.execute(&x).unwrap();
    fault::arm_recompile_panic(1);
    assert!(!engine.promote_now(), "a crashed recompile must not promote");
    assert_eq!(engine.tier(), KernelTier::Tier0);
    assert_eq!(engine.promotions(), 0);
    // The engine still serves, bit-identically to before the crash.
    let (y, _) = engine.execute(&x).unwrap();
    assert_eq!(y.max_abs_diff(&expected), 0.0);
    assert_eq!(engine.tier(), KernelTier::Tier0);
    // Declined is terminal: even with the fault disarmed, the engine does
    // not retry the recompile.
    fault::disarm();
    assert!(!engine.promote_now());
    assert_eq!(engine.tier(), KernelTier::Tier0);
}

#[test]
fn serving_session_survives_a_recompile_crash() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let _guard = fault::exclusive();
    let a = small_uniform();
    let pool = WorkerPool::new(2);
    let engine = scalar_tiered(&a, &pool, 2);
    let server = SpmmServer::new(vec![engine]).unwrap();
    let inputs: Vec<DenseMatrix<f32>> =
        (0..12).map(|i| DenseMatrix::random(a.ncols(), D, 500 + i)).collect();
    let expected: Vec<DenseMatrix<f32>> =
        inputs.iter().map(|x| (*server.single(0).unwrap().execute(x).unwrap().0).clone()).collect();
    fault::arm_recompile_panic(1);
    let mut completed = 0usize;
    let (report, ()) = server
        .serve_controlled(
            ServeOptions::new(AdmissionPolicy::blocking(4))
                .tiering(TierPolicy::new().warmup(2).foreground()),
            |sender| {
                for x in inputs.iter().cloned() {
                    sender.send_request(ServerRequest::new(0, x)).unwrap();
                }
            },
            |response| {
                assert!(response.is_completed(), "a recompile crash must not fail requests");
                let e = &expected[response.request()];
                assert_eq!(response.output().max_abs_diff(e), 0.0);
                completed += 1;
            },
        )
        .unwrap();
    assert_eq!(completed, inputs.len());
    assert_eq!(report.requests, inputs.len());
    assert_eq!(report.failed, 0);
    assert_eq!(report.promotions, 0, "the crashed recompile must not promote");
    assert_eq!(report.engine(0).unwrap().tier.label(), "tier0");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Promotion never changes outputs: for arbitrary small matrices and
    /// column counts, a scalar-pinned tiered engine produces bit-identical
    /// results before and after its hot-swap.
    #[test]
    fn promotion_never_changes_outputs(
        nrows in 8usize..120,
        ncols in 8usize..120,
        density in 1usize..12,
        d in 1usize..7,
        seed in 0u64..1000,
    ) {
        if !host_supports_jit() {
            return Ok(());
        }
        let nnz = (nrows * ncols * density / 40).max(1);
        let a = jitspmm_sparse::generate::uniform::<f32>(nrows, ncols, nnz, seed);
        let pool = WorkerPool::new(1);
        let engine = JitSpmmBuilder::new()
            .pool(pool.clone())
            .strategy(Strategy::row_split_dynamic_default())
            .isa(IsaLevel::Scalar)
            .tiered(TierPolicy::new().warmup(1))
            .build(&a, d)
            .unwrap();
        let x = DenseMatrix::random(ncols, d, seed.wrapping_add(1));
        let (y0, _) = engine.execute(&x).unwrap();
        prop_assert!(engine.promote_now());
        prop_assert_eq!(engine.tier(), KernelTier::Promoted);
        let (y1, _) = engine.execute(&x).unwrap();
        prop_assert_eq!(y0.max_abs_diff(&y1), 0.0);
        prop_assert!(y1.approx_eq(&a.spmm_reference(&x), 1e-4));
    }
}
