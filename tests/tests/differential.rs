//! Scenario-matrix differential harness.
//!
//! With overlapping JIT execution in the runtime, correctness can no longer
//! rest on ad-hoc cases: this harness runs the JIT engine (both workload
//! division families), the single-thread scalar baseline and the
//! multi-threaded auto-vectorized baseline against each other across a
//! matrix of structural shapes × lane counts, and requires elementwise
//! agreement within tolerance everywhere. The scalar baseline — plain safe
//! Rust, no threading, no unsafe — is the trust anchor; everything else is
//! differential against it.
//!
//! Shapes: empty rows, a single dense row, banded, power-law, tiny (1×1),
//! and wide outputs (d swept over 1..=64). Lane counts: 1, 2, the shared
//! pool's size, and oversubscribed (more lanes than workers). Every
//! combination that executed is counted, and the harness asserts it covered
//! at least the 20 combinations the runtime milestone calls for.

use jitspmm::baseline::{scalar, vectorized};
use jitspmm::{JitSpmmBuilder, Strategy, WorkerPool};
use jitspmm_integration_tests::host_supports_jit;
use jitspmm_sparse::{generate, CsrMatrix, DenseMatrix};

/// One differential scenario: a named matrix shape plus a dense column
/// count.
struct Scenario {
    name: String,
    matrix: CsrMatrix<f32>,
    d: usize,
}

fn scenario(name: impl Into<String>, matrix: CsrMatrix<f32>, d: usize) -> Scenario {
    Scenario { name: name.into(), matrix, d }
}

/// A 120x90 matrix where five out of every six rows are empty.
fn empty_rows() -> CsrMatrix<f32> {
    let triplets: Vec<(usize, usize, f32)> = (0..120)
        .step_by(6)
        .flat_map(|r| [(r, r % 90, 1.5), (r, (r * 7 + 3) % 90, -2.0)])
        .collect();
    CsrMatrix::from_triplets(120, 90, &triplets).unwrap()
}

/// A 64x64 matrix whose only non-zeros form one fully dense row, so a
/// single task carries the entire workload however rows are partitioned.
fn single_dense_row() -> CsrMatrix<f32> {
    let triplets: Vec<(usize, usize, f32)> =
        (0..64).map(|c| (20usize, c as usize, 0.25 + c as f32)).collect();
    CsrMatrix::from_triplets(64, 64, &triplets).unwrap()
}

/// A 150x150 tridiagonal band: uniform short rows, the static splitters'
/// best case and the dynamic claim loop's worst (many tiny batches).
fn banded() -> CsrMatrix<f32> {
    let mut triplets = Vec::new();
    for r in 0..150usize {
        triplets.push((r, r, 2.0));
        if r > 0 {
            triplets.push((r, r - 1, -1.0));
        }
        if r + 1 < 150 {
            triplets.push((r, r + 1, -1.0));
        }
    }
    CsrMatrix::from_triplets(150, 150, &triplets).unwrap()
}

/// A skewed power-law graph (hub rows next to near-empty rows).
fn power_law() -> CsrMatrix<f32> {
    generate::rmat(9, 5_000, generate::RmatConfig::GRAPH500, 33)
}

/// The smallest possible problem.
fn tiny() -> CsrMatrix<f32> {
    CsrMatrix::from_triplets(1, 1, &[(0, 0, 3.5)]).unwrap()
}

/// A moderate uniform matrix used for the wide-output (d) sweep.
fn wide_base() -> CsrMatrix<f32> {
    generate::uniform(200, 170, 2_500, 44)
}

fn scenarios() -> Vec<Scenario> {
    let mut all = vec![
        scenario("empty-rows", empty_rows(), 8),
        scenario("single-dense-row", single_dense_row(), 16),
        scenario("banded", banded(), 8),
        scenario("power-law", power_law(), 16),
        scenario("tiny-1x1", tiny(), 1),
    ];
    // Wide outputs: sweep d across the 1..=64 range the kernels tile over,
    // hitting the remainder paths (non-multiples of the SIMD width) too.
    for d in [1usize, 5, 16, 33, 64] {
        all.push(scenario(format!("wide-d{d}"), wide_base(), d));
    }
    all
}

#[test]
fn differential_matrix_jit_vs_baselines() {
    let pool = WorkerPool::new(3);
    // 1 lane, 2 lanes, one per pool worker, oversubscribed.
    let lane_counts = [1usize, 2, pool.size(), 8];
    let jit = host_supports_jit();
    if !jit {
        eprintln!("host lacks AVX/FMA: running the baseline-only differential");
    }
    let mut combinations = 0usize;

    for s in scenarios() {
        let x = DenseMatrix::random(s.matrix.ncols(), s.d, 77);
        // Trust anchor: single-thread scalar AOT baseline.
        let mut expected = DenseMatrix::zeros(s.matrix.nrows(), s.d);
        scalar::spmm_scalar_naive(&s.matrix, &x, &mut expected);

        for lanes in lane_counts {
            // Differential axis 1: the multi-threaded auto-vectorized
            // baseline on the shared pool.
            let mut y_vec = DenseMatrix::zeros(s.matrix.nrows(), s.d);
            vectorized::spmm_vectorized_on(
                &pool,
                &s.matrix,
                &x,
                &mut y_vec,
                Strategy::row_split_dynamic_default(),
                lanes,
            );
            assert!(
                y_vec.approx_eq(&expected, 1e-4),
                "{} ({} lanes): vectorized vs scalar, max diff {}",
                s.name,
                lanes,
                y_vec.max_abs_diff(&expected)
            );

            // Differential axis 2: the JIT engine, both workload-division
            // families (static ranges and the dynamic claim loop).
            if jit {
                for strategy in
                    [Strategy::RowSplitStatic, Strategy::RowSplitDynamic { batch: 16 }]
                {
                    let engine = JitSpmmBuilder::new()
                        .strategy(strategy)
                        .threads(lanes)
                        .pool(pool.clone())
                        .build(&s.matrix, s.d)
                        .unwrap();
                    let (y, report) = engine.execute(&x).unwrap();
                    assert!(
                        y.approx_eq(&expected, 1e-4),
                        "{} ({} lanes, {strategy}): jit vs scalar, max diff {}",
                        s.name,
                        lanes,
                        y.max_abs_diff(&expected)
                    );
                    assert_eq!(report.threads, lanes);
                }
            }
            combinations += 1;
        }
    }

    assert!(
        combinations >= 20,
        "differential harness must cover at least 20 scenario combinations, got {combinations}"
    );
}

#[test]
fn differential_matrix_async_overlap() {
    // The same scenario matrix, but every consecutive pair of scenarios is
    // executed as two *overlapping* lane-capped async launches on one shared
    // pool — the exact configuration the deferred-submission runtime exists
    // for — and each result must still match the scalar trust anchor.
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let pool = WorkerPool::new(3);
    let all = scenarios();
    let mut combinations = 0usize;
    for pair in all.chunks(2) {
        let [s1, s2] = pair else { continue };
        let x1 = DenseMatrix::random(s1.matrix.ncols(), s1.d, 5);
        let x2 = DenseMatrix::random(s2.matrix.ncols(), s2.d, 6);
        let mut expected1 = DenseMatrix::zeros(s1.matrix.nrows(), s1.d);
        scalar::spmm_scalar_naive(&s1.matrix, &x1, &mut expected1);
        let mut expected2 = DenseMatrix::zeros(s2.matrix.nrows(), s2.d);
        scalar::spmm_scalar_naive(&s2.matrix, &x2, &mut expected2);
        let e1 = JitSpmmBuilder::new()
            .strategy(Strategy::RowSplitDynamic { batch: 16 })
            .threads(1)
            .pool(pool.clone())
            .build(&s1.matrix, s1.d)
            .unwrap();
        let e2 = JitSpmmBuilder::new()
            .strategy(Strategy::RowSplitStatic)
            .threads(2)
            .pool(pool.clone())
            .build(&s2.matrix, s2.d)
            .unwrap();
        pool.scope(|scope| {
            for round in 0..5 {
                let h1 = e1.execute_async(scope, &x1).unwrap();
                let h2 = e2.execute_async(scope, &x2).unwrap();
                // Join in reverse submission order to exercise out-of-order
                // completion.
                let (y2, _) = h2.wait();
                let (y1, _) = h1.wait();
                assert!(
                    y1.approx_eq(&expected1, 1e-4),
                    "{} overlapped with {} (round {round})",
                    s1.name,
                    s2.name
                );
                assert!(
                    y2.approx_eq(&expected2, 1e-4),
                    "{} overlapped with {} (round {round})",
                    s2.name,
                    s1.name
                );
                combinations += 1;
            }
        });
    }
    assert!(combinations >= 20, "async differential covered only {combinations} combinations");
}
