//! Scenario-matrix differential harness.
//!
//! With overlapping JIT execution in the runtime, correctness can no longer
//! rest on ad-hoc cases: this harness runs the JIT engine (both workload
//! division families), the single-thread scalar baseline and the
//! multi-threaded auto-vectorized baseline against each other across a
//! matrix of structural shapes × lane counts, and requires elementwise
//! agreement within tolerance everywhere. The scalar baseline — plain safe
//! Rust, no threading, no unsafe — is the trust anchor; everything else is
//! differential against it.
//!
//! Shapes: empty rows, a single dense row, banded, power-law, tiny (1×1),
//! and wide outputs (d swept over 1..=64). Lane counts: 1, 2, the shared
//! pool's size, and oversubscribed (more lanes than workers). Every
//! combination that executed is counted, and the harness asserts it covered
//! at least the 20 combinations the runtime milestone calls for.

use jitspmm::baseline::{scalar, vectorized};
use jitspmm::serve::{ServerRequest, SpmmServer};
use jitspmm::shard::{plan_shards, ShardedSpmm};
use jitspmm::{JitSpmmBuilder, JitSpmmError, JobSpec, Strategy, WorkerPool};
use jitspmm_integration_tests::host_supports_jit;
use jitspmm_sparse::{generate, CsrMatrix, DenseMatrix};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One differential scenario: a named matrix shape plus a dense column
/// count.
struct Scenario {
    name: String,
    matrix: CsrMatrix<f32>,
    d: usize,
}

fn scenario(name: impl Into<String>, matrix: CsrMatrix<f32>, d: usize) -> Scenario {
    Scenario { name: name.into(), matrix, d }
}

/// A 120x90 matrix where five out of every six rows are empty.
fn empty_rows() -> CsrMatrix<f32> {
    let triplets: Vec<(usize, usize, f32)> =
        (0..120).step_by(6).flat_map(|r| [(r, r % 90, 1.5), (r, (r * 7 + 3) % 90, -2.0)]).collect();
    CsrMatrix::from_triplets(120, 90, &triplets).unwrap()
}

/// A 64x64 matrix whose only non-zeros form one fully dense row, so a
/// single task carries the entire workload however rows are partitioned.
fn single_dense_row() -> CsrMatrix<f32> {
    let triplets: Vec<(usize, usize, f32)> =
        (0..64).map(|c| (20usize, c as usize, 0.25 + c as f32)).collect();
    CsrMatrix::from_triplets(64, 64, &triplets).unwrap()
}

/// A 150x150 tridiagonal band: uniform short rows, the static splitters'
/// best case and the dynamic claim loop's worst (many tiny batches).
fn banded() -> CsrMatrix<f32> {
    let mut triplets = Vec::new();
    for r in 0..150usize {
        triplets.push((r, r, 2.0));
        if r > 0 {
            triplets.push((r, r - 1, -1.0));
        }
        if r + 1 < 150 {
            triplets.push((r, r + 1, -1.0));
        }
    }
    CsrMatrix::from_triplets(150, 150, &triplets).unwrap()
}

/// A skewed power-law graph (hub rows next to near-empty rows).
fn power_law() -> CsrMatrix<f32> {
    generate::rmat(9, 5_000, generate::RmatConfig::GRAPH500, 33)
}

/// The smallest possible problem.
fn tiny() -> CsrMatrix<f32> {
    CsrMatrix::from_triplets(1, 1, &[(0, 0, 3.5)]).unwrap()
}

/// A moderate uniform matrix used for the wide-output (d) sweep.
fn wide_base() -> CsrMatrix<f32> {
    generate::uniform(200, 170, 2_500, 44)
}

fn scenarios() -> Vec<Scenario> {
    let mut all = vec![
        scenario("empty-rows", empty_rows(), 8),
        scenario("single-dense-row", single_dense_row(), 16),
        scenario("banded", banded(), 8),
        scenario("power-law", power_law(), 16),
        scenario("tiny-1x1", tiny(), 1),
    ];
    // Wide outputs: sweep d across the 1..=64 range the kernels tile over,
    // hitting the remainder paths (non-multiples of the SIMD width) too.
    for d in [1usize, 5, 16, 33, 64] {
        all.push(scenario(format!("wide-d{d}"), wide_base(), d));
    }
    all
}

#[test]
fn differential_matrix_jit_vs_baselines() {
    let pool = WorkerPool::new(3);
    // 1 lane, 2 lanes, one per pool worker, oversubscribed.
    let lane_counts = [1usize, 2, pool.size(), 8];
    let jit = host_supports_jit();
    if !jit {
        eprintln!("host lacks AVX/FMA: running the baseline-only differential");
    }
    let mut combinations = 0usize;

    for s in scenarios() {
        let x = DenseMatrix::random(s.matrix.ncols(), s.d, 77);
        // Trust anchor: single-thread scalar AOT baseline.
        let mut expected = DenseMatrix::zeros(s.matrix.nrows(), s.d);
        scalar::spmm_scalar_naive(&s.matrix, &x, &mut expected);

        for lanes in lane_counts {
            // Differential axis 1: the multi-threaded auto-vectorized
            // baseline on the shared pool.
            let mut y_vec = DenseMatrix::zeros(s.matrix.nrows(), s.d);
            vectorized::spmm_vectorized_on(
                &pool,
                &s.matrix,
                &x,
                &mut y_vec,
                Strategy::row_split_dynamic_default(),
                lanes,
            );
            assert!(
                y_vec.approx_eq(&expected, 1e-4),
                "{} ({} lanes): vectorized vs scalar, max diff {}",
                s.name,
                lanes,
                y_vec.max_abs_diff(&expected)
            );

            // Differential axis 2: the JIT engine, both workload-division
            // families (static ranges and the dynamic claim loop).
            if jit {
                for strategy in [Strategy::RowSplitStatic, Strategy::RowSplitDynamic { batch: 16 }]
                {
                    let engine = JitSpmmBuilder::new()
                        .strategy(strategy)
                        .threads(lanes)
                        .pool(pool.clone())
                        .build(&s.matrix, s.d)
                        .unwrap();
                    let (y, report) = engine.execute(&x).unwrap();
                    assert!(
                        y.approx_eq(&expected, 1e-4),
                        "{} ({} lanes, {strategy}): jit vs scalar, max diff {}",
                        s.name,
                        lanes,
                        y.max_abs_diff(&expected)
                    );
                    assert_eq!(report.threads, lanes);
                }
            }
            combinations += 1;
        }
    }

    assert!(
        combinations >= 20,
        "differential harness must cover at least 20 scenario combinations, got {combinations}"
    );
}

#[test]
fn differential_matrix_async_overlap() {
    // The same scenario matrix, but every consecutive pair of scenarios is
    // executed as two *overlapping* lane-capped async launches on one shared
    // pool — the exact configuration the deferred-submission runtime exists
    // for — and each result must still match the scalar trust anchor.
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let pool = WorkerPool::new(3);
    let all = scenarios();
    let mut combinations = 0usize;
    for pair in all.chunks(2) {
        let [s1, s2] = pair else { continue };
        let x1 = DenseMatrix::random(s1.matrix.ncols(), s1.d, 5);
        let x2 = DenseMatrix::random(s2.matrix.ncols(), s2.d, 6);
        let mut expected1 = DenseMatrix::zeros(s1.matrix.nrows(), s1.d);
        scalar::spmm_scalar_naive(&s1.matrix, &x1, &mut expected1);
        let mut expected2 = DenseMatrix::zeros(s2.matrix.nrows(), s2.d);
        scalar::spmm_scalar_naive(&s2.matrix, &x2, &mut expected2);
        let e1 = JitSpmmBuilder::new()
            .strategy(Strategy::RowSplitDynamic { batch: 16 })
            .threads(1)
            .pool(pool.clone())
            .build(&s1.matrix, s1.d)
            .unwrap();
        let e2 = JitSpmmBuilder::new()
            .strategy(Strategy::RowSplitStatic)
            .threads(2)
            .pool(pool.clone())
            .build(&s2.matrix, s2.d)
            .unwrap();
        pool.scope(|scope| {
            for round in 0..5 {
                let h1 = e1.execute_async(scope, &x1).unwrap();
                let h2 = e2.execute_async(scope, &x2).unwrap();
                // Join in reverse submission order to exercise out-of-order
                // completion.
                let (y2, _) = h2.wait();
                let (y1, _) = h1.wait();
                assert!(
                    y1.approx_eq(&expected1, 1e-4),
                    "{} overlapped with {} (round {round})",
                    s1.name,
                    s2.name
                );
                assert!(
                    y2.approx_eq(&expected2, 1e-4),
                    "{} overlapped with {} (round {round})",
                    s2.name,
                    s1.name
                );
                combinations += 1;
            }
        });
    }
    assert!(combinations >= 20, "async differential covered only {combinations} combinations");
}

#[test]
fn differential_matrix_batched() {
    // The batched pipeline across the scenario matrix × batch sizes
    // {1, 4, 32}: every output must be *bit-identical* to the blocking
    // per-input `execute` (same compiled kernel, same per-row arithmetic —
    // pipelining may not change a single bit) and must agree with the
    // per-input scalar batch baseline, the trust anchor, within tolerance.
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let pool = WorkerPool::new(3);
    let mut combinations = 0usize;
    for (index, s) in scenarios().iter().enumerate() {
        // Alternate the workload-division family across scenarios so both
        // the static-range and the dynamic claim-loop kernels see every
        // batch size.
        let strategy = if index % 2 == 0 {
            Strategy::RowSplitDynamic { batch: 16 }
        } else {
            Strategy::RowSplitStatic
        };
        let engine = JitSpmmBuilder::new()
            .strategy(strategy)
            .threads(2)
            .pool(pool.clone())
            .build(&s.matrix, s.d)
            .unwrap();
        for batch_size in [1usize, 4, 32] {
            let inputs: Vec<DenseMatrix<f32>> = (0..batch_size)
                .map(|i| DenseMatrix::random(s.matrix.ncols(), s.d, 1_000 + i as u64))
                .collect();
            let anchors = scalar::spmm_scalar_batch(&s.matrix, &inputs);
            let blocking: Vec<DenseMatrix<f32>> =
                inputs.iter().map(|x| engine.execute(x).unwrap().0.into_dense()).collect();
            let (outputs, report) =
                pool.scope(|scope| engine.execute_batch(scope, &inputs)).unwrap();
            assert_eq!(outputs.len(), batch_size, "{} (batch {batch_size})", s.name);
            assert_eq!(report.inputs, batch_size);
            for (i, y) in outputs.iter().enumerate() {
                assert_eq!(
                    **y, blocking[i],
                    "{} (batch {batch_size}, input {i}, {strategy}): batched result must be \
                     bit-identical to per-input execute",
                    s.name
                );
                assert!(
                    y.approx_eq(&anchors[i], 1e-4),
                    "{} (batch {batch_size}, input {i}, {strategy}): batched vs scalar anchor, \
                     max diff {}",
                    s.name,
                    y.max_abs_diff(&anchors[i])
                );
            }
            drop(outputs);
            // Same inputs through an explicit depth-2 stream: `execute_batch`
            // may pick the sequential fast path on single-core hosts, but an
            // explicit depth >= 2 always drives the real queue pipeline, so
            // the pipelined machinery gets differential coverage everywhere.
            pool.scope(|scope| {
                let mut stream = engine.batch_stream(scope, 2).unwrap();
                let mut streamed = Vec::new();
                for x in &inputs {
                    if let Some((y, _)) = stream.push(x).unwrap() {
                        streamed.push(y);
                    }
                }
                let (rest, _) = stream.finish();
                streamed.extend(rest.into_iter().map(|(y, _)| y));
                for (i, y) in streamed.iter().enumerate() {
                    assert_eq!(
                        **y, blocking[i],
                        "{} (batch {batch_size}, input {i}, {strategy}): pipelined stream \
                         must be bit-identical to per-input execute",
                        s.name
                    );
                }
            });
            combinations += 1;
        }
    }
    assert!(
        combinations >= 18,
        "batched differential must cover >= 6 shapes x 3 batch sizes, got {combinations}"
    );
}

#[test]
fn batched_edge_case_empty_and_single_input() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let m = wide_base();
    let engine = JitSpmmBuilder::new().threads(2).build(&m, 8).unwrap();
    // Batch of size 0: no launches, an empty report, engine untouched.
    let (outputs, report) = engine.pool().scope(|scope| engine.execute_batch(scope, &[])).unwrap();
    assert!(outputs.is_empty());
    assert_eq!(report.inputs, 0);
    // Batch of size 1 equals a single blocking execute, bit for bit.
    let one = [DenseMatrix::random(m.ncols(), 8, 7)];
    let (y_blocking, _) = engine.execute(&one[0]).unwrap();
    let y_blocking = y_blocking.into_dense();
    let (outputs, report) = engine.pool().scope(|scope| engine.execute_batch(scope, &one)).unwrap();
    assert_eq!(outputs.len(), 1);
    assert_eq!(*outputs[0], y_blocking);
    assert_eq!(report.inputs, 1);
}

#[test]
fn batched_edge_case_mismatched_d_errors_without_corrupting_the_pipeline() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let m = wide_base();
    let pool = WorkerPool::new(2);
    let engine = JitSpmmBuilder::new().threads(2).pool(pool.clone()).build(&m, 16).unwrap();
    let good: Vec<DenseMatrix<f32>> =
        (0..4).map(|i| DenseMatrix::random(m.ncols(), 16, 50 + i)).collect();
    let mut mixed: Vec<DenseMatrix<f32>> = good.clone();
    mixed.insert(2, DenseMatrix::random(m.ncols(), 8, 99)); // wrong d
                                                            // The whole batch is rejected up front — validation is hoisted, so no
                                                            // launch happens before the error.
    let err = pool.scope(|scope| engine.execute_batch(scope, &mixed)).unwrap_err();
    assert!(matches!(err, JitSpmmError::ShapeMismatch(_)), "got {err:?}");
    // Mid-stream, a bad push errors while the launches in flight complete
    // unharmed.
    let bad = DenseMatrix::<f32>::zeros(m.ncols(), 4);
    pool.scope(|scope| {
        let mut stream = engine.batch_stream(scope, 2).unwrap();
        let mut completed = Vec::new();
        for (i, x) in good.iter().enumerate() {
            if i == 1 {
                assert!(matches!(stream.push(&bad).unwrap_err(), JitSpmmError::ShapeMismatch(_)));
            }
            if let Some(done) = stream.push(x).unwrap() {
                completed.push(done);
            }
        }
        let (rest, report) = stream.finish();
        completed.extend(rest);
        assert_eq!(report.inputs, good.len());
        let anchors = scalar::spmm_scalar_batch(&m, &good);
        for ((y, _), anchor) in completed.iter().zip(&anchors) {
            assert!(y.approx_eq(anchor, 1e-4));
        }
    });
    // And the engine still serves plain executes afterwards.
    let (y, _) = engine.execute(&good[0]).unwrap();
    assert!(y.approx_eq(&m.spmm_reference(&good[0]), 1e-4));
}

#[test]
fn batched_edge_case_worker_panic_leaves_engine_reusable() {
    // A worker panic mid-batch: pool workers only panic from *task* code,
    // and the compiled kernels do not panic, so the realistic mid-batch
    // panic is another job sharing the pool blowing up between batch
    // launches. The pool isolates per-job panics, the batch must complete
    // correctly, the scope re-raises the foreign panic at exit — and the
    // engine (and pool) must remain fully usable afterwards.
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let m = power_law();
    let pool = WorkerPool::new(2);
    let engine = JitSpmmBuilder::new()
        .strategy(Strategy::RowSplitDynamic { batch: 16 })
        .threads(1)
        .pool(pool.clone())
        .build(&m, 8)
        .unwrap();
    let inputs: Vec<DenseMatrix<f32>> =
        (0..6).map(|i| DenseMatrix::random(m.ncols(), 8, 70 + i)).collect();
    let anchors = scalar::spmm_scalar_batch(&m, &inputs);
    let boom = |_i: usize| panic!("mid-batch worker panic");
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|scope| {
            let mut stream = engine.batch_stream(scope, 2).unwrap();
            let mut completed = Vec::new();
            for (i, x) in inputs.iter().enumerate() {
                if i == 2 {
                    // The panicking job lands on the shared workers between
                    // two batch launches; its handle is dropped, so the
                    // panic surfaces at scope exit.
                    drop(scope.submit(JobSpec::new(2).max_lanes(1), &boom));
                }
                if let Some(done) = stream.push(x).unwrap() {
                    completed.push(done);
                }
            }
            let (rest, report) = stream.finish();
            completed.extend(rest);
            assert_eq!(report.inputs, inputs.len());
            for ((y, _), anchor) in completed.iter().zip(&anchors) {
                assert!(y.approx_eq(anchor, 1e-4), "batch corrupted by a foreign panic");
            }
        });
    }));
    let payload = result.unwrap_err();
    let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(message, "mid-batch worker panic");
    // Engine and pool both survive: a fresh batch and a plain execute work.
    let (outputs, _) = pool.scope(|scope| engine.execute_batch(scope, &inputs[..2])).unwrap();
    assert!(outputs[0].approx_eq(&anchors[0], 1e-4));
    assert!(outputs[1].approx_eq(&anchors[1], 1e-4));
    let (y, _) = engine.execute(&inputs[0]).unwrap();
    assert!(y.approx_eq(&anchors[0], 1e-4));
}

#[test]
fn differential_matrix_mixed_engine_serving() {
    // The serving router across the scenario matrix: 2-4 engines over
    // heterogeneous shapes, an interleaved mixed request order, and batch
    // sizes {1, 4, 32} *per engine*. Every response must be bit-identical to
    // that engine's blocking per-input `execute` (routing, owned-input
    // hand-off and pipelining may not change a single bit) and must agree
    // with the serial scalar serving anchor within tolerance.
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let pool = WorkerPool::new(3);
    let all = scenarios();
    let mut combinations = 0usize;
    for engine_count in [2usize, 3, 4] {
        // Spread the picked scenarios across the list so the engine mix is
        // heterogeneous (different nrows/ncols/d per engine).
        let stride = (all.len() / engine_count).max(1);
        let picked: Vec<&Scenario> = all.iter().step_by(stride).take(engine_count).collect();
        assert_eq!(picked.len(), engine_count);
        for batch_size in [1usize, 4, 32] {
            // One pipeline's worth of inputs per engine, then interleave
            // with a fixed non-round-robin pattern: drain per-engine queues
            // in an order driven by a small LCG so bursts and alternations
            // both occur.
            let mut per_engine_inputs: Vec<Vec<DenseMatrix<f32>>> = picked
                .iter()
                .enumerate()
                .map(|(e, s)| {
                    (0..batch_size)
                        .map(|i| {
                            DenseMatrix::random(s.matrix.ncols(), s.d, (3_000 + 100 * e + i) as u64)
                        })
                        .collect()
                })
                .collect();
            let engines: Vec<_> = picked
                .iter()
                .enumerate()
                .map(|(e, s)| {
                    let strategy = if e % 2 == 0 {
                        Strategy::RowSplitDynamic { batch: 16 }
                    } else {
                        Strategy::RowSplitStatic
                    };
                    JitSpmmBuilder::new()
                        .strategy(strategy)
                        .threads(1)
                        .pool(pool.clone())
                        .build(&s.matrix, s.d)
                        .unwrap()
                })
                .collect();
            // Reference 1: per-engine sequential blocking execution.
            let expected: Vec<Vec<DenseMatrix<f32>>> = engines
                .iter()
                .zip(&per_engine_inputs)
                .map(|(engine, inputs)| {
                    inputs.iter().map(|x| engine.execute(x).unwrap().0.into_dense()).collect()
                })
                .collect();
            // Reference 2: the serial scalar serving anchor over the same
            // mixed stream (built below, in the same interleaved order).
            let matrices: Vec<&CsrMatrix<f32>> = picked.iter().map(|s| &s.matrix).collect();

            // Interleave into the mixed request stream.
            let mut cursors = vec![0usize; engine_count];
            let mut requests = Vec::with_capacity(engine_count * batch_size);
            let mut anchor_requests = Vec::with_capacity(engine_count * batch_size);
            let mut lcg: u64 = 0x2545F4914F6CDD1D ^ (engine_count * 31 + batch_size) as u64;
            let total = engine_count * batch_size;
            while requests.len() < total {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let mut engine = (lcg >> 33) as usize % engine_count;
                while cursors[engine] == batch_size {
                    engine = (engine + 1) % engine_count;
                }
                let input = std::mem::replace(
                    &mut per_engine_inputs[engine][cursors[engine]],
                    DenseMatrix::zeros(1, 1),
                );
                cursors[engine] += 1;
                anchor_requests.push((engine, input.clone()));
                requests.push(ServerRequest::new(engine, input));
            }
            let anchors = scalar::spmm_scalar_serve_mixed(&matrices, &anchor_requests);

            let server = SpmmServer::new(engines).unwrap();
            let (responses, report) = server.serve_batch(0, requests).unwrap();
            assert_eq!(responses.len(), total);
            assert_eq!(report.requests, total);
            for (g, response) in responses.iter().enumerate() {
                assert_eq!(response.request(), g, "responses sorted by submission order");
                assert_eq!(response.engine(), anchor_requests[g].0, "response routed wrong");
                assert_eq!(
                    **response.output(),
                    expected[response.engine()][response.index()],
                    "{} engines, batch {batch_size}, request {g} (engine {}): mixed-stream \
                     result must be bit-identical to per-engine sequential execute",
                    engine_count,
                    response.engine()
                );
                assert!(
                    response.output().approx_eq(&anchors[g], 1e-4),
                    "{} engines, batch {batch_size}, request {g}: serving vs scalar anchor, \
                     max diff {}",
                    engine_count,
                    response.output().max_abs_diff(&anchors[g])
                );
            }
            for (e, engine_report) in report.per_engine.iter().enumerate() {
                assert_eq!(engine_report.inputs, batch_size, "engine {e} request count");
            }
            combinations += 1;
        }
    }
    assert_eq!(
        combinations, 9,
        "mixed-engine differential must cover 3 engine counts x 3 batch sizes"
    );
}

#[test]
fn mixed_engine_serving_in_single_threaded_mode_is_deterministic() {
    // The same mixed stream served twice must produce byte-identical
    // responses — whatever the scheduling mode (this test is most
    // interesting under RUST_TEST_THREADS=1, where the whole choreography
    // is deterministic, but must hold everywhere).
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let pool = WorkerPool::new(2);
    let a = wide_base();
    let b = banded();
    let build = || {
        SpmmServer::new(vec![
            JitSpmmBuilder::new()
                .pool(pool.clone())
                .threads(1)
                .strategy(Strategy::RowSplitDynamic { batch: 16 })
                .build(&a, 8)
                .unwrap(),
            JitSpmmBuilder::new()
                .pool(pool.clone())
                .threads(1)
                .strategy(Strategy::RowSplitStatic)
                .build(&b, 4)
                .unwrap(),
        ])
        .unwrap()
    };
    let requests = |server: &SpmmServer<'_, f32>| -> Vec<ServerRequest<f32>> {
        (0..10)
            .map(|i| {
                let engine = (i * 3 + 1) % 2;
                let single = server.single(engine).expect("both engines are single");
                let (m, d) = (single.matrix(), single.d());
                ServerRequest::new(engine, DenseMatrix::random(m.ncols(), d, 5_000 + i as u64))
            })
            .collect()
    };
    let server1 = build();
    let (first, _) = server1.serve_batch(2, requests(&server1)).unwrap();
    let server2 = build();
    let (second, _) = server2.serve_batch(2, requests(&server2)).unwrap();
    assert_eq!(first.len(), second.len());
    for (r1, r2) in first.iter().zip(&second) {
        assert_eq!(r1.engine(), r2.engine());
        assert_eq!(r1.index(), r2.index());
        assert_eq!(**r1.output(), **r2.output(), "serving is not deterministic");
    }
}

#[test]
fn differential_matrix_sharded() {
    // The sharded engine across the scenario matrix × shard counts
    // {2, 3, 8} × batch sizes {1, 4, 32}: sharding splits the matrix into
    // nnz-balanced row shards, each with its own compiled kernel and
    // (possibly different) workload-division strategy — yet every output
    // row is computed with the same per-row arithmetic, so results must be
    // *bit-identical* to the unsharded engine's blocking `execute` (single
    // inputs and batches alike) and within tolerance of the scalar batch
    // anchor.
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let pool = WorkerPool::new(3);
    let mut combinations = 0usize;
    for s in scenarios() {
        let inputs: Vec<DenseMatrix<f32>> =
            (0..32).map(|i| DenseMatrix::random(s.matrix.ncols(), s.d, 2_000 + i as u64)).collect();
        let anchors = scalar::spmm_scalar_batch(&s.matrix, &inputs);
        let unsharded =
            JitSpmmBuilder::new().threads(2).pool(pool.clone()).build(&s.matrix, s.d).unwrap();
        let blocking: Vec<DenseMatrix<f32>> =
            inputs.iter().map(|x| unsharded.execute(x).unwrap().0.into_dense()).collect();
        for k in [2usize, 3, 8] {
            let plan = plan_shards(&s.matrix, k, 1).unwrap();
            assert!(plan.len() <= k && !plan.is_empty());
            assert!(plan.nnz_imbalance() >= 1.0);
            let sharded = ShardedSpmm::compile(&plan, s.d, pool.clone()).unwrap();
            // The single-launch path: every shard as one overlapped raw
            // launch writing straight into the full output.
            let (y, report) = pool.scope(|scope| sharded.execute(scope, &inputs[0])).unwrap();
            assert_eq!(
                *y, blocking[0],
                "{} (k = {k}): sharded execute must be bit-identical to unsharded",
                s.name
            );
            assert_eq!(report.shards, plan.len());
            drop(y);
            for batch_size in [1usize, 4, 32] {
                let slice = &inputs[..batch_size];
                let (outputs, report) =
                    pool.scope(|scope| sharded.execute_batch(scope, slice)).unwrap();
                assert_eq!(outputs.len(), batch_size);
                assert_eq!(report.inputs(), batch_size);
                assert_eq!(report.per_shard.len(), plan.len());
                for (i, y) in outputs.iter().enumerate() {
                    assert_eq!(
                        **y, blocking[i],
                        "{} (k = {k}, batch {batch_size}, input {i}): sharded batch must be \
                         bit-identical to unsharded execute",
                        s.name
                    );
                    assert!(
                        y.approx_eq(&anchors[i], 1e-4),
                        "{} (k = {k}, batch {batch_size}, input {i}): sharded vs scalar \
                         anchor, max diff {}",
                        s.name,
                        y.max_abs_diff(&anchors[i])
                    );
                }
                combinations += 1;
            }
        }
    }
    assert!(
        combinations >= 90,
        "sharded differential must cover >= 10 shapes x 3 shard counts x 3 batch sizes, \
         got {combinations}"
    );
}

/// A deep owned copy of `m`: same structure, freshly allocated arrays —
/// the storage layout shard plans used to materialize before borrowed CSR.
fn deep_copy(m: &CsrMatrix<f32>) -> CsrMatrix<f32> {
    CsrMatrix::from_raw_parts(
        m.nrows(),
        m.ncols(),
        m.row_ptr().to_vec(),
        m.col_indices().to_vec(),
        m.values().to_vec(),
    )
    .unwrap()
}

#[test]
fn differential_matrix_borrowed_vs_owned_shards() {
    // The scenario matrix × shard counts {2, 3, 8}: every shard a plan
    // extracts is a zero-copy view of the parent's nnz arrays, and an
    // engine compiled from that view must be *bit-identical* — single
    // launches and batches alike — to an engine compiled from a deep owned
    // copy of the same rows. Borrowed storage changes where the arrays live
    // and what a plan weighs, never the bytes the generated kernel embeds
    // (the base addresses differ; the loads and arithmetic do not).
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let pool = WorkerPool::new(2);
    let mut shards_checked = 0usize;
    for s in scenarios() {
        let inputs: Vec<DenseMatrix<f32>> =
            (0..4).map(|i| DenseMatrix::random(s.matrix.ncols(), s.d, 5_000 + i as u64)).collect();
        for k in [2usize, 3, 8] {
            let plan = plan_shards(&s.matrix, k, 1).unwrap();
            for spec in plan.shards() {
                assert!(
                    spec.matrix.shares_storage_with(&s.matrix),
                    "{} (k = {k}): shard {:?} copied its nnz arrays",
                    s.name,
                    spec.rows
                );
                let owned = deep_copy(&spec.matrix);
                assert!(!owned.shares_storage_with(&s.matrix));
                let from_view = JitSpmmBuilder::new()
                    .threads(2)
                    .pool(pool.clone())
                    .build(&spec.matrix, s.d)
                    .unwrap();
                let from_owned =
                    JitSpmmBuilder::new().threads(2).pool(pool.clone()).build(&owned, s.d).unwrap();
                // Blocking single launches, input by input.
                for (i, x) in inputs.iter().enumerate() {
                    let (yv, _) = from_view.execute(x).unwrap();
                    let (yo, _) = from_owned.execute(x).unwrap();
                    assert_eq!(
                        *yv, *yo,
                        "{} (k = {k}, shard {:?}, input {i}): view-compiled engine \
                         diverged from owned-compiled",
                        s.name, spec.rows
                    );
                }
                // The pipelined batch path, whole batch at once.
                let (ys_view, _) =
                    pool.scope(|scope| from_view.execute_batch(scope, &inputs)).unwrap();
                let (ys_owned, _) =
                    pool.scope(|scope| from_owned.execute_batch(scope, &inputs)).unwrap();
                for (i, (yv, yo)) in ys_view.iter().zip(&ys_owned).enumerate() {
                    assert_eq!(
                        **yv, **yo,
                        "{} (k = {k}, shard {:?}, batch input {i}): view-compiled batch \
                         diverged from owned-compiled",
                        s.name, spec.rows
                    );
                }
                shards_checked += 1;
            }
        }
    }
    assert!(
        shards_checked >= 30,
        "borrowed-vs-owned differential must cover a meaningful shard population, \
         got {shards_checked}"
    );
}

#[test]
fn sharded_edge_cases() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let pool = WorkerPool::new(2);
    // The planner on an empty matrix fails with the typed error, never a
    // panic or a zero-shard plan.
    let empty = CsrMatrix::<f32>::zeros(0, 8);
    assert!(matches!(plan_shards(&empty, 4, 1).unwrap_err(), JitSpmmError::EmptySparseMatrix));
    // K = 1: one shard, the degenerate plan — still bit-identical.
    let m = power_law();
    let x = DenseMatrix::random(m.ncols(), 8, 3);
    let unsharded = JitSpmmBuilder::new().threads(2).pool(pool.clone()).build(&m, 8).unwrap();
    let (expected, _) = unsharded.execute(&x).unwrap();
    let plan = plan_shards(&m, 1, 1).unwrap();
    assert_eq!(plan.len(), 1);
    let sharded = ShardedSpmm::compile(&plan, 8, pool.clone()).unwrap();
    let (y, _) = pool.scope(|scope| sharded.execute(scope, &x)).unwrap();
    assert_eq!(*y, *expected, "k = 1 sharding must be the identity");
    drop(y);
    // K > rows: the plan clamps to the row count, no zero-row shards.
    let small = tiny();
    let plan = plan_shards(&small, 8, 1).unwrap();
    assert_eq!(plan.len(), 1, "a 1x1 matrix supports exactly one shard");
    let sharded = ShardedSpmm::compile(&plan, 1, pool.clone()).unwrap();
    let xs = DenseMatrix::random(1, 1, 5);
    let (y, _) = pool.scope(|scope| sharded.execute(scope, &xs)).unwrap();
    assert!(y.approx_eq(&small.spmm_reference(&xs), 1e-5));
    drop(y);
    // An empty (zero-nnz) shard: the single-dense-row scenario concentrates
    // every non-zero in one row, so cutting it leaves zero-nnz shards that
    // must still overwrite their output rows.
    let hub = single_dense_row();
    let plan = plan_shards(&hub, 4, 1).unwrap();
    assert!(
        plan.shards().iter().any(|s| s.nnz() == 0),
        "expected the hub matrix to produce a zero-nnz shard"
    );
    let sharded = ShardedSpmm::compile(&plan, 16, pool.clone()).unwrap();
    let xh = DenseMatrix::random(hub.ncols(), 16, 6);
    let reference = hub.spmm_reference(&xh);
    for _ in 0..2 {
        // Twice: the second run reuses a dirty recycled output buffer.
        let (y, _) = pool.scope(|scope| sharded.execute(scope, &xh)).unwrap();
        assert!(y.approx_eq(&reference, 1e-4));
    }
}
