//! Integration tests for the persistent kernel cache: warm starts must be
//! **bit-identical** to cold compiles across every engine shape, and a
//! corrupt or mismatched cache must degrade to a silent recompile — never a
//! crash, never a wrong result.
//!
//! The contracts under test, end to end:
//!
//! - A second engine built against a populated cache directory loads its
//!   kernel from disk (observable in [`jitspmm::CacheStats`]) and produces
//!   outputs bit-for-bit equal to a cache-less compile — for static and
//!   dynamic row-split, for tiered warm starts (which skip tier-0
//!   entirely), and for every shard of a sharded engine.
//! - Truncating an entry, flipping a code byte, or flipping a byte of the
//!   header's key echo (the on-disk stand-in for "compiled on a different
//!   CPU") makes the load a *reject*: the engine recompiles fresh, results
//!   stay correct, and the stats record what happened.
//! - Distinct matrices never alias: mutating one value of the sparse matrix
//!   re-keys the cache, and even sharing one directory across many random
//!   matrices always yields each matrix's own correct product.
//! - A cache populated by one *process* serves a bit-identical result in a
//!   fresh process (the test re-spawns itself; the CI workflow repeats the
//!   same round trip through the `jitspmm-serve` TCP front end).

use jitspmm::{
    CacheStats, JitSpmm, JitSpmmBuilder, KernelCache, KernelTier, ShardOptions, ShardedSpmm,
    Strategy, TierPolicy, WorkerPool,
};
use jitspmm_integration_tests::{host_supports_jit, pathological, small_uniform};
use jitspmm_sparse::{CsrMatrix, DenseMatrix};
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const D: usize = 6;

/// Self-cleaning unique temp directory for a cache.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "jitspmm-itest-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn bits(y: &DenseMatrix<f32>) -> Vec<u32> {
    y.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn builder(pool: &WorkerPool, strategy: Strategy) -> JitSpmmBuilder {
    JitSpmmBuilder::new().pool(pool.clone()).threads(2).strategy(strategy)
}

/// Compile `a` twice against `dir` — populate, then reload — and assert the
/// reloaded engine (a) actually hit the cache and (b) multiplies
/// bit-identically to a cache-less engine.
fn assert_warm_start_identical(a: &CsrMatrix<f32>, strategy: Strategy) {
    let dir = TempDir::new("warm");
    let pool = WorkerPool::new(2);
    let x = DenseMatrix::random(a.ncols(), D, 7);

    let (y_fresh, _) = builder(&pool, strategy).build(a, D).unwrap().execute(&x).unwrap();

    let cache = KernelCache::open(dir.path());
    let cold = builder(&pool, strategy).kernel_cache_in(Arc::clone(&cache)).build(a, D).unwrap();
    let (y_cold, _) = cold.execute(&x).unwrap();
    drop(cold);
    let after_cold: CacheStats = cache.stats();
    assert!(after_cold.stores >= 1, "cold compile should populate: {after_cold:?}");

    let warm = builder(&pool, strategy).kernel_cache_in(Arc::clone(&cache)).build(a, D).unwrap();
    let (y_warm, _) = warm.execute(&x).unwrap();
    let after_warm = cache.stats();
    assert!(
        after_warm.hits > after_cold.hits,
        "warm compile should hit the cache: {after_cold:?} -> {after_warm:?}"
    );
    assert_eq!(after_warm.stores, after_cold.stores, "a hit must not re-store");

    assert_eq!(bits(&y_fresh), bits(&y_cold), "cache-less vs populating compile");
    assert_eq!(bits(&y_fresh), bits(&y_warm), "cache-less vs warm-started compile");
}

#[test]
fn warm_start_is_bit_identical_static() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    assert_warm_start_identical(&small_uniform(), Strategy::RowSplitStatic);
}

#[test]
fn warm_start_is_bit_identical_dynamic() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    assert_warm_start_identical(&small_uniform(), Strategy::RowSplitDynamic { batch: 32 });
    assert_warm_start_identical(&pathological(), Strategy::row_split_dynamic_default());
}

#[test]
fn tiered_warm_start_skips_tier0_and_matches_promoted_engine() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let dir = TempDir::new("tier");
    let pool = WorkerPool::new(2);
    let x = DenseMatrix::random(a.ncols(), D, 8);
    let cache = KernelCache::open(dir.path());

    let tiered = |cache: &Arc<KernelCache>| -> JitSpmm<'_, f32> {
        JitSpmmBuilder::new()
            .pool(pool.clone())
            .threads(2)
            .tiered(TierPolicy::new().warmup(1))
            .kernel_cache_in(Arc::clone(cache))
            .build(&a, D)
            .unwrap()
    };

    // First process-equivalent: tier-0 start, explicit promotion (stores the
    // promotion record + promoted kernel).
    let first = tiered(&cache);
    assert_eq!(first.tier(), KernelTier::Tier0, "no record yet: must start on tier-0");
    assert!(first.promote_now(), "promotion must complete inline");
    assert_eq!(first.tier(), KernelTier::Promoted);
    let (y_promoted, _) = first.execute(&x).unwrap();
    drop(first);

    // Second process-equivalent: the recorded outcome short-circuits warmup.
    let warm = tiered(&cache);
    assert_eq!(warm.tier(), KernelTier::Promoted, "warm start must skip tier-0");
    assert_eq!(warm.promotions(), 0, "warm start is not an in-process hot swap");
    let (y_warm, _) = warm.execute(&x).unwrap();
    assert_eq!(bits(&y_promoted), bits(&y_warm), "warm-started vs promoted engine");
}

#[test]
fn sharded_engines_warm_start_every_shard() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let dir = TempDir::new("shard");
    let pool = WorkerPool::new(2);
    let x = DenseMatrix::random(a.ncols(), D, 9);
    let plan = jitspmm::plan_shards(&a, 2, 1).unwrap();
    let cache = KernelCache::open(dir.path());

    let cold = ShardedSpmm::compile_with(
        &plan,
        D,
        pool.clone(),
        ShardOptions::new().kernel_cache(Arc::clone(&cache)),
    )
    .unwrap();
    let (y_cold, _) = pool.scope(|scope| cold.execute(scope, &x)).unwrap();
    drop(cold);
    let after_cold = cache.stats();
    assert!(after_cold.stores >= 2, "one store per shard: {after_cold:?}");

    let warm = ShardedSpmm::compile_with(
        &plan,
        D,
        pool.clone(),
        ShardOptions::new().kernel_cache(Arc::clone(&cache)),
    )
    .unwrap();
    let (y_warm, _) = pool.scope(|scope| warm.execute(scope, &x)).unwrap();
    assert!(
        cache.stats().hits >= after_cold.hits + 2,
        "every shard should reload: {:?}",
        cache.stats()
    );
    assert_eq!(bits(&y_cold), bits(&y_warm), "sharded warm start must be bit-identical");
    assert!(y_warm.approx_eq(&a.spmm_reference(&x), 1e-4));
}

/// The stored kernel entries (`k-*.jsk`) of a cache directory.
fn kernel_entries(dir: &Path) -> Vec<PathBuf> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().unwrap_or_default().to_string_lossy().into_owned();
            name.starts_with("k-") && name.ends_with(".jsk")
        })
        .collect();
    entries.sort();
    entries
}

/// Corrupt every stored entry with `damage`, then rebuild: the load must be
/// rejected (or missed) silently and the recompiled engine must still be
/// bit-identical to the pristine warm start.
fn assert_corruption_recompiles(damage: impl Fn(&Path)) {
    let a = small_uniform();
    let dir = TempDir::new("corrupt");
    let pool = WorkerPool::new(2);
    let x = DenseMatrix::random(a.ncols(), D, 10);
    let strategy = Strategy::row_split_dynamic_default();
    let cache = KernelCache::open(dir.path());

    let (y_good, _) = builder(&pool, strategy)
        .kernel_cache_in(Arc::clone(&cache))
        .build(&a, D)
        .unwrap()
        .execute(&x)
        .unwrap();
    let entries = kernel_entries(dir.path());
    assert!(!entries.is_empty(), "cold compile must store entries");
    for entry in &entries {
        damage(entry);
    }

    let before = cache.stats();
    let engine = builder(&pool, strategy).kernel_cache_in(Arc::clone(&cache)).build(&a, D).unwrap();
    let after = cache.stats();
    assert_eq!(after.hits, before.hits, "damaged entries must not hit: {after:?}");
    assert!(
        after.rejects > before.rejects || after.misses > before.misses,
        "damage must surface as reject or miss: {before:?} -> {after:?}"
    );
    let (y_recompiled, _) = engine.execute(&x).unwrap();
    assert_eq!(bits(&y_good), bits(&y_recompiled), "recompile after corruption");
    assert!(y_recompiled.approx_eq(&a.spmm_reference(&x), 1e-4));
}

#[test]
fn truncated_entries_recompile_silently() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    assert_corruption_recompiles(|path| {
        let len = std::fs::metadata(path).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(path).unwrap();
        file.set_len(len / 2).unwrap();
    });
}

#[test]
fn flipped_code_bytes_recompile_silently() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    // 4096 is the code offset: flip the first generated instruction byte.
    assert_corruption_recompiles(|path| flip_byte(path, 4096));
}

#[test]
fn foreign_cpu_key_recompiles_silently() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    // The header echoes the full cache key; its final byte is the CPU
    // feature mask. Flipping it is exactly what loading an entry produced
    // on a different machine looks like: a bytewise key mismatch.
    assert_corruption_recompiles(|path| flip_byte(path, 8 + 71));
}

fn flip_byte(path: &Path, offset: u64) {
    use std::io::{Read, Seek, SeekFrom, Write};
    let mut file = std::fs::OpenOptions::new().read(true).write(true).open(path).unwrap();
    file.seek(SeekFrom::Start(offset)).unwrap();
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte).unwrap();
    byte[0] ^= 0xA5;
    file.seek(SeekFrom::Start(offset)).unwrap();
    file.write_all(&byte).unwrap();
}

#[test]
fn value_mutation_rekeys_the_cache() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let dir = TempDir::new("rekey");
    let pool = WorkerPool::new(2);
    let x = DenseMatrix::random(a.ncols(), D, 11);
    let cache = KernelCache::open(dir.path());
    let strategy = Strategy::row_split_dynamic_default();

    builder(&pool, strategy).kernel_cache_in(Arc::clone(&cache)).build(&a, D).unwrap();
    let populated = cache.stats();

    // Same shape, same structure, one value changed: a different matrix
    // must key differently (and must of course multiply correctly).
    let mut values: Vec<f32> = a.values().to_vec();
    values[0] += 1.0;
    let b = CsrMatrix::from_raw_parts(
        a.nrows(),
        a.ncols(),
        a.row_ptr().to_vec(),
        a.col_indices().to_vec(),
        values,
    )
    .unwrap();
    let engine = builder(&pool, strategy).kernel_cache_in(Arc::clone(&cache)).build(&b, D).unwrap();
    let after = cache.stats();
    assert_eq!(after.hits, populated.hits, "mutated matrix must not reuse the entry");
    assert!(after.stores > populated.stores, "mutated matrix stores its own entry");
    let (y, _) = engine.execute(&x).unwrap();
    assert!(y.approx_eq(&b.spmm_reference(&x), 1e-4));
}

#[test]
fn clear_and_capacity_bound_the_directory() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let pool = WorkerPool::new(2);
    let dir = TempDir::new("cap");
    // Room for roughly one entry (the 4 KiB header dominates small
    // kernels): compiling for several d values must evict.
    let cache = KernelCache::with_capacity(dir.path(), 8 << 10);
    for d in [2usize, 4, 8] {
        builder(&pool, Strategy::RowSplitStatic)
            .kernel_cache_in(Arc::clone(&cache))
            .build(&a, d)
            .unwrap();
    }
    let stats = cache.stats();
    assert!(stats.evictions >= 1, "capacity must evict: {stats:?}");
    assert!(cache.size_bytes() <= 8 << 10, "directory stays under the cap");

    cache.clear();
    assert_eq!(cache.len(), 0, "clear removes every entry");
    assert_eq!(cache.size_bytes(), 0);

    // The cleared cache still works: next compile repopulates.
    let before = cache.stats();
    builder(&pool, Strategy::RowSplitStatic)
        .kernel_cache_in(Arc::clone(&cache))
        .build(&a, 4)
        .unwrap();
    assert!(cache.stats().stores > before.stores);
    assert!(!cache.is_empty());
}

// ---------------------------------------------------------------------------
// Two-process round trip: a cache populated by one process must warm-start a
// fresh process bit-identically. The parent re-runs this test binary to
// execute `child_populates_kernel_cache` in a separate process.
// ---------------------------------------------------------------------------

const CHILD_ENV: &str = "JITSPMM_CACHE_CHILD_DIR";

/// Not a test on its own: the populate half of the two-process round trip,
/// run by `warm_start_survives_a_process_boundary` in a child process.
#[test]
#[ignore]
fn child_populates_kernel_cache() {
    let Ok(dir) = std::env::var(CHILD_ENV) else {
        eprintln!("skipping: populate-helper only runs under {CHILD_ENV}");
        return;
    };
    let a = small_uniform();
    let pool = WorkerPool::new(2);
    let x = DenseMatrix::random(a.ncols(), D, 21);
    let cache = KernelCache::open(&dir);
    let engine = JitSpmmBuilder::new()
        .pool(pool.clone())
        .threads(2)
        .tiered(TierPolicy::new().warmup(1))
        .kernel_cache_in(Arc::clone(&cache))
        .build(&a, D)
        .unwrap();
    assert!(engine.promote_now());
    let (y, _) = engine.execute(&x).unwrap();
    let raw: Vec<u8> = y.as_slice().iter().flat_map(|v| v.to_le_bytes()).collect();
    std::fs::write(Path::new(&dir).join("expected-output.bin"), raw).unwrap();
}

#[test]
fn warm_start_survives_a_process_boundary() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let dir = TempDir::new("proc");
    let exe = std::env::current_exe().unwrap();
    let status = std::process::Command::new(&exe)
        .args(["--exact", "child_populates_kernel_cache", "--ignored", "--test-threads=1"])
        .env(CHILD_ENV, dir.path())
        .status()
        .expect("spawning the populate child");
    assert!(status.success(), "populate child failed");
    let expected = std::fs::read(dir.path().join("expected-output.bin")).unwrap();

    // This process now plays "restarted server": same matrix spec, same
    // cache directory — must hit, warm-start promoted, and match bit-for-bit.
    let a = small_uniform();
    let pool = WorkerPool::new(2);
    let x = DenseMatrix::random(a.ncols(), D, 21);
    let cache = KernelCache::open(dir.path());
    let engine = JitSpmmBuilder::new()
        .pool(pool.clone())
        .threads(2)
        .tiered(TierPolicy::new().warmup(1))
        .kernel_cache_in(Arc::clone(&cache))
        .build(&a, D)
        .unwrap();
    let stats = cache.stats();
    assert!(stats.hits >= 1, "fresh process must hit the populated cache: {stats:?}");
    assert_eq!(stats.stores, 0, "nothing to store on a clean warm start: {stats:?}");
    assert_eq!(engine.tier(), KernelTier::Promoted, "promotion outcome crosses the process");
    let (y, _) = engine.execute(&x).unwrap();
    let raw: Vec<u8> = y.as_slice().iter().flat_map(|v| v.to_le_bytes()).collect();
    assert_eq!(raw, expected, "cross-process output must be bit-identical");
}

// ---------------------------------------------------------------------------
// Property: sharing one cache directory across arbitrary distinct matrices
// never produces a wrong product — keys must separate them, and even
// pathological reuse recomputes correctly.
// ---------------------------------------------------------------------------

fn arb_matrix() -> impl PropStrategy<Value = (usize, usize, Vec<(usize, usize, f32)>)> {
    (2usize..24, 2usize..24).prop_flat_map(|(nrows, ncols)| {
        let entries = proptest::collection::vec((0..nrows, 0..ncols, -4.0f32..4.0f32), 1..80);
        (Just(nrows), Just(ncols), entries)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn shared_cache_never_aliases_distinct_matrices(
        (arows, acols, atriplets) in arb_matrix(),
        (brows, bcols, btriplets) in arb_matrix(),
        d in 1usize..5,
        seed in 0u64..1000,
    ) {
        if !host_supports_jit() {
            return Ok(());
        }
        let a = CsrMatrix::from_triplets(arows, acols, &atriplets).unwrap();
        let b = CsrMatrix::from_triplets(brows, bcols, &btriplets).unwrap();
        let dir = TempDir::new("prop");
        let pool = WorkerPool::new(1);
        let cache = KernelCache::open(dir.path());
        // a twice (second build may hit), then b into the same directory:
        // each engine must produce its own matrix's product.
        for m in [&a, &a, &b] {
            let x = DenseMatrix::random(m.ncols(), d, seed);
            let engine = JitSpmmBuilder::new()
                .pool(pool.clone())
                .threads(1)
                .kernel_cache_in(Arc::clone(&cache))
                .build(m, d)
                .unwrap();
            let (y, _) = engine.execute(&x).unwrap();
            prop_assert!(y.approx_eq(&m.spmm_reference(&x), 1e-4));
        }
    }
}
