//! Integration tests for the serving control plane: admission under overload
//! (blocking backpressure, in-flight caps, load shedding), priority and
//! deadline scheduling, dynamic topology (retire/add while serving) and the
//! drain barrier.
//!
//! The contracts under test, end to end:
//!
//! - Producers never block indefinitely: blocking policies make progress
//!   because the serving loop drains concurrently, shedding policies refuse
//!   overflow immediately with a typed [`RejectReason`].
//! - Every offered request is accounted for — completed, rejected or shed —
//!   and [`ServerReport::offered`] adds up exactly.
//! - Scheduling never changes answers: whatever subset is admitted, its
//!   outputs are bit-identical to the same requests served FIFO.

use jitspmm::serve::{
    AdmissionPolicy, EngineStatus, RejectReason, SendError, ServeOptions, ServerRequest, SpmmServer,
};
use jitspmm::{JitSpmmBuilder, WorkerPool};
use jitspmm_integration_tests::{host_supports_jit, small_skewed, small_uniform};
use jitspmm_sparse::DenseMatrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// The column count of `small_skewed()` (an RMAT scale-9 matrix is 512²).
const SKEWED_COLS: usize = 512;
/// The column count of `small_uniform()`.
const UNIFORM_COLS: usize = 350;
const D: usize = 4;

#[test]
fn admission_table_accounts_for_every_send_under_overload() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let pool = WorkerPool::new(1);
    let engine = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, D).unwrap();
    let server = SpmmServer::new(vec![engine]).unwrap();

    // One row per admission regime; `total` floods well past the cap. The
    // shedding row is the acceptance case: 10x the queue depth, producer
    // returns immediately from every send.
    let rows: [(&str, AdmissionPolicy, usize, bool); 3] = [
        ("blocking backpressure", AdmissionPolicy::blocking(3), 30, true),
        ("blocking + in-flight cap", AdmissionPolicy::blocking(4).with_max_in_flight(2), 20, true),
        ("shedding at 10x queue depth", AdmissionPolicy::shedding(4), 40, false),
    ];
    for (name, policy, total, admits_all) in rows {
        let inputs: Vec<DenseMatrix<f32>> =
            (0..total).map(|i| DenseMatrix::random(UNIFORM_COLS, D, 1_000 + i as u64)).collect();
        // References from the very engine that will serve — the comparison
        // below is bit-for-bit, not approximate.
        let expected: Vec<DenseMatrix<f32>> = inputs
            .iter()
            .map(|x| (*server.single(0).unwrap().execute(x).unwrap().0).clone())
            .collect();

        let mut completed: Vec<(usize, DenseMatrix<f32>)> = Vec::new();
        let (report, send_rejections) = server
            .serve_controlled(
                ServeOptions::new(policy),
                |sender| {
                    let mut rejections = 0usize;
                    for input in inputs.iter().cloned() {
                        match sender.send_request(ServerRequest::new(0, input)) {
                            Ok(()) => {}
                            Err(SendError::Rejected(RejectReason::QueueFull)) => rejections += 1,
                            Err(other) => panic!("{name}: unexpected send error: {other}"),
                        }
                    }
                    rejections
                },
                |response| {
                    assert!(response.is_completed(), "{name}: admitted requests must complete");
                    completed.push((response.index(), (**response.output()).clone()));
                },
            )
            .unwrap();

        // Accounting: every send is answered exactly once, somewhere.
        assert_eq!(report.offered(), total, "{name}: offered load must add up");
        assert_eq!(report.requests, completed.len(), "{name}");
        assert_eq!(report.failed, 0, "{name}");
        assert_eq!(report.shed_deadline, 0, "{name}");
        assert_eq!(report.rejected, send_rejections, "{name}: shed sends are counted");
        assert_eq!(report.requests + report.rejected, total, "{name}");
        if admits_all {
            assert_eq!(report.requests, total, "{name}: blocking admission drops nothing");
        } else {
            assert!(report.requests >= 1, "{name}: some requests must get through");
            assert!(report.rejected >= 1, "{name}: a 10x flood must shed");
        }

        // Bit-identical results. Under blocking admission the admitted set
        // is everything and per-engine completion order equals send order;
        // under shedding the admitted subset is timing-dependent, so match
        // each output to a unique reference.
        let mut used = vec![false; total];
        for (index, output) in &completed {
            if admits_all {
                assert_eq!(output, &expected[*index], "{name}: request {index} diverged");
            } else {
                let hit = expected
                    .iter()
                    .enumerate()
                    .position(|(i, e)| !used[i] && output == e)
                    .unwrap_or_else(|| {
                        panic!("{name}: a completed output matches no FIFO reference")
                    });
                used[hit] = true;
            }
        }
    }
}

#[test]
fn priority_scheduling_is_bit_identical_to_fifo_serving() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let b = small_skewed();
    let pool = WorkerPool::new(1);
    let server = SpmmServer::new(vec![
        JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, D).unwrap(),
        JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&b, D).unwrap(),
    ])
    .unwrap();
    let total = 12usize;
    let make_request = |i: usize| {
        let engine = i % 2;
        let cols = if engine == 0 { UNIFORM_COLS } else { SKEWED_COLS };
        ServerRequest::new(engine, DenseMatrix::random(cols, D, 2_000 + i as u64))
    };

    // FIFO reference: the exact same requests through serve_batch.
    let (fifo, fifo_report) =
        server.serve_batch(0, (0..total).map(make_request).collect()).unwrap();
    assert_eq!(fifo_report.requests, total);
    let references: Vec<DenseMatrix<f32>> = fifo.iter().map(|r| (**r.output()).clone()).collect();

    // Controlled serving with scrambled priorities and generous deadlines:
    // the reorder buffer drains urgent traffic first, but under a blocking
    // policy nothing is shed — so the result multiset must be bit-identical.
    let mut outputs: Vec<DenseMatrix<f32>> = Vec::new();
    let (report, ()) = server
        .serve_controlled(
            ServeOptions::new(AdmissionPolicy::blocking(4)),
            |sender| {
                for i in 0..total {
                    let request = make_request(i)
                        .with_priority((7 * i % 5) as u8)
                        .with_deadline(Duration::from_secs(60));
                    sender.send_request(request).expect("blocking sends are always admitted");
                }
            },
            |response| {
                assert!(response.is_completed(), "nothing may be shed under this policy");
                outputs.push((**response.output()).clone());
            },
        )
        .unwrap();
    assert_eq!(report.requests, total);
    assert_eq!(report.offered(), total);

    let mut used = vec![false; total];
    for output in &outputs {
        let hit = references
            .iter()
            .enumerate()
            .position(|(i, e)| !used[i] && output == e)
            .expect("a prioritized output has no bit-identical FIFO counterpart");
        used[hit] = true;
    }
    assert!(used.iter().all(|u| *u), "every FIFO reference must be produced exactly once");
}

#[test]
fn expired_deadlines_are_shed_with_typed_rejections() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let pool = WorkerPool::new(1);
    let engine = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, D).unwrap();
    let server = SpmmServer::new(vec![engine]).unwrap();
    let total = 8usize;
    let inputs: Vec<DenseMatrix<f32>> =
        (0..total).map(|i| DenseMatrix::random(UNIFORM_COLS, D, 3_000 + i as u64)).collect();
    let expected: Vec<DenseMatrix<f32>> =
        inputs.iter().map(|x| (*server.single(0).unwrap().execute(x).unwrap().0).clone()).collect();

    // Odd requests carry a zero budget — already expired by the time the
    // router looks at them — so exactly the even half completes.
    let mut completed: Vec<DenseMatrix<f32>> = Vec::new();
    let mut shed = 0usize;
    let (report, ()) = server
        .serve_controlled(
            ServeOptions::new(AdmissionPolicy::blocking(total)),
            |sender| {
                for (i, input) in inputs.iter().cloned().enumerate() {
                    let mut request = ServerRequest::new(0, input);
                    if i % 2 == 1 {
                        request = request.with_deadline(Duration::ZERO);
                    }
                    sender.send_request(request).expect("admission is blocking, never shed");
                }
            },
            |response| match response.rejection() {
                Some(reason) => {
                    assert_eq!(reason, RejectReason::DeadlinePassed);
                    shed += 1;
                }
                None => completed.push((**response.output()).clone()),
            },
        )
        .unwrap();
    assert_eq!(report.shed_deadline, total / 2, "every zero-budget request is shed");
    assert_eq!(shed, total / 2, "sheds surface to the consumer as typed rejections");
    assert_eq!(report.requests, total / 2);
    assert_eq!(report.offered(), total);
    // The survivors are the even requests, in order, bit-identical.
    for (slot, output) in completed.iter().enumerate() {
        assert_eq!(output, &expected[2 * slot], "surviving request {slot} diverged");
    }
}

#[test]
fn retiring_an_engine_mid_stream_keeps_the_rest_serving() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let b = small_skewed();
    let pool = WorkerPool::new(1);
    let server = SpmmServer::new(vec![
        JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, D).unwrap(),
        JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&b, D).unwrap(),
    ])
    .unwrap();
    let handle = server.control();
    let answered = AtomicUsize::new(0);
    let per_engine = [AtomicUsize::new(0), AtomicUsize::new(0)];
    let input = |engine: usize, seed: u64| {
        let cols = if engine == 0 { UNIFORM_COLS } else { SKEWED_COLS };
        DenseMatrix::random(cols, D, seed)
    };

    let (report, ()) = server
        .serve_controlled(
            ServeOptions::new(AdmissionPolicy::blocking(8)),
            |sender| {
                for i in 0..3u64 {
                    sender.send_request(ServerRequest::new(1, input(1, 4_000 + i))).unwrap();
                    sender.send_request(ServerRequest::new(0, input(0, 4_100 + i))).unwrap();
                }
                // Wait until everything in flight is answered, so retirement
                // below can't race with engine 1's own pending requests.
                while answered.load(Ordering::SeqCst) < 6 {
                    std::thread::yield_now();
                }
                assert!(handle.retire_engine(1), "engine 1 was active");
                // The retired engine refuses at the door, with the reason.
                match sender.send_request(ServerRequest::new(1, input(1, 4_500))) {
                    Err(SendError::Rejected(RejectReason::Draining)) => {}
                    other => panic!("send to a retiring engine must be refused, got {other:?}"),
                }
                // Unknown ids too — the queue knows the id space.
                match sender.send_request(ServerRequest::new(7, input(0, 4_600))) {
                    Err(SendError::Rejected(RejectReason::UnknownEngine)) => {}
                    other => panic!("send to an unknown engine must be refused, got {other:?}"),
                }
                // The unrelated engine is untouched by either.
                sender.send_request(ServerRequest::new(0, input(0, 4_700))).unwrap();
            },
            |response| {
                assert!(response.is_completed(), "admitted requests all complete in this test");
                per_engine[response.engine()].fetch_add(1, Ordering::SeqCst);
                answered.fetch_add(1, Ordering::SeqCst);
            },
        )
        .unwrap();

    assert_eq!(report.requests, 7);
    assert_eq!(report.rejected, 2, "the two refused sends are counted in the report");
    assert_eq!(per_engine[0].load(Ordering::SeqCst), 4);
    assert_eq!(per_engine[1].load(Ordering::SeqCst), 3);
    assert_eq!(
        server.engine_status(1),
        Some(EngineStatus::Retired),
        "the drained engine ends fully retired once the session closes"
    );
    assert_eq!(server.engine_status(0), Some(EngineStatus::Active));

    // The server outlives the retirement: engine 0 still serves.
    let (responses, _, _) = server
        .serve_stream(0, 2, |sender| {
            sender.send(0, input(0, 4_800)).expect("engine 0 still serves");
        })
        .unwrap();
    assert_eq!(responses.len(), 1);
}

#[test]
fn drain_barrier_waits_for_every_admitted_request() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let pool = WorkerPool::new(1);
    let engine = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, D).unwrap();
    let server = SpmmServer::new(vec![engine]).unwrap();
    let handle = server.control();
    let answered = AtomicUsize::new(0);
    let input = |seed: u64| DenseMatrix::random(UNIFORM_COLS, D, seed);

    let (report, refused) = server
        .serve_controlled(
            ServeOptions::new(AdmissionPolicy::blocking(8)),
            |sender| {
                for i in 0..6u64 {
                    sender.send_request(ServerRequest::new(0, input(5_000 + i))).unwrap();
                }
                // The barrier: when drain() returns, every admitted request
                // has been handed to the consumer — not merely launched.
                handle.drain();
                assert_eq!(
                    answered.load(Ordering::SeqCst),
                    6,
                    "drain() returned before the consumer saw every admitted request"
                );
                // While draining, the server refuses new work, with a reason.
                let mut refused = 0usize;
                match sender.send_request(ServerRequest::new(0, input(5_100))) {
                    Err(SendError::Rejected(RejectReason::Draining)) => refused += 1,
                    other => panic!("send to a draining server must be refused, got {other:?}"),
                }
                assert!(handle.is_draining());
                // Resume: the same queue and server admit again.
                handle.resume();
                assert!(!handle.is_draining());
                for i in 0..2u64 {
                    sender.send_request(ServerRequest::new(0, input(5_200 + i))).unwrap();
                }
                refused
            },
            |response| {
                assert!(response.is_completed());
                answered.fetch_add(1, Ordering::SeqCst);
            },
        )
        .unwrap();

    assert_eq!(report.requests, 8, "6 before the drain + 2 after the resume");
    assert_eq!(report.rejected, refused);
    assert_eq!(answered.load(Ordering::SeqCst), 8);
    assert_eq!(handle.outstanding(), 0, "a finished serve leaves nothing outstanding");
}

#[test]
fn engines_can_be_added_while_a_session_is_open() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let b = small_skewed();
    let pool = WorkerPool::new(1);
    let first = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, D).unwrap();
    // Built up front, registered mid-stream: a single engine and a sharded
    // one, both sharing the server's pool.
    let late_single = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&b, D).unwrap();
    let plan = jitspmm::shard::plan_shards(&a, 2, 1).unwrap();
    let late_sharded = jitspmm::shard::ShardedSpmm::compile(&plan, D, pool.clone()).unwrap();
    let server = SpmmServer::new(vec![first]).unwrap();
    let server_ref = &server;
    let answered = AtomicUsize::new(0);
    let answered_ref = &answered;
    let per_engine = [AtomicUsize::new(0), AtomicUsize::new(0), AtomicUsize::new(0)];

    let (report, ()) = server
        .serve_controlled(
            ServeOptions::new(AdmissionPolicy::blocking(8)),
            move |sender| {
                sender
                    .send_request(ServerRequest::new(0, DenseMatrix::random(UNIFORM_COLS, D, 1)))
                    .unwrap();
                while answered_ref.load(Ordering::SeqCst) < 1 {
                    std::thread::yield_now();
                }
                // Topology grows under an open session; the new ids serve
                // the very next requests.
                let id = server_ref.add_engine(late_single).unwrap();
                assert_eq!(id, 1);
                let id = server_ref.add_sharded(late_sharded).unwrap();
                assert_eq!(id, 2);
                sender
                    .send_request(ServerRequest::new(1, DenseMatrix::random(SKEWED_COLS, D, 2)))
                    .unwrap();
                sender
                    .send_request(ServerRequest::new(2, DenseMatrix::random(UNIFORM_COLS, D, 3)))
                    .unwrap();
            },
            |response| {
                assert!(response.is_completed(), "requests to added engines must complete");
                per_engine[response.engine()].fetch_add(1, Ordering::SeqCst);
                answered.fetch_add(1, Ordering::SeqCst);
            },
        )
        .unwrap();

    assert_eq!(report.requests, 3);
    assert_eq!(report.per_engine.len(), 3, "the report covers engines added mid-session");
    for (id, count) in per_engine.iter().enumerate() {
        assert_eq!(count.load(Ordering::SeqCst), 1, "engine {id} answered its request");
    }
    // The late sharded engine computes the same answer as the original
    // single engine over the same matrix — routed through the server.
    let x = DenseMatrix::random(UNIFORM_COLS, D, 4);
    let via_single = server.single(0).unwrap().execute(&x).unwrap().0;
    let (responses, _) = server.serve_batch(0, vec![ServerRequest::new(2, x)]).unwrap();
    assert!(
        responses[0].output().approx_eq(&via_single, 1e-5),
        "sharded and single engines disagree on the same matrix"
    );
}

#[test]
fn in_flight_cap_parks_producers_on_the_condvar_and_completions_wake_them() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    // Armed kernel delays are process-global state.
    let _guard = jitspmm::serve::fault::exclusive();
    let a = small_uniform();
    let pool = WorkerPool::new(1);
    let engine = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, D).unwrap();
    let server = SpmmServer::new(vec![engine]).unwrap();
    let control = server.control();
    assert_eq!(control.cap_blocked(), 0);

    // Slow every launch so the producer is guaranteed to hit the in-flight
    // cap before the first completion: with a cap of 1, every send after
    // the first must park on the control plane's condvar (the old code
    // sleep-polled here in 1 ms ticks) and be woken by a completion. A
    // missing wake hangs this test; a missing park fails the counter
    // assertion below.
    let total = 6usize;
    jitspmm::serve::fault::arm_kernel_delay(Duration::from_millis(2), total as u64);
    let inputs: Vec<DenseMatrix<f32>> =
        (0..total).map(|i| DenseMatrix::random(UNIFORM_COLS, D, 9_000 + i as u64)).collect();
    let (report, sent) = server
        .serve_controlled(
            ServeOptions::new(AdmissionPolicy::blocking(total).with_max_in_flight(1)),
            |sender| {
                let mut sent = 0usize;
                for x in inputs {
                    if sender.send_request(ServerRequest::new(0, x)).is_ok() {
                        sent += 1;
                    }
                }
                sent
            },
            |response| assert!(response.is_completed(), "blocking admission completes everything"),
        )
        .unwrap();
    assert_eq!(sent, total);
    assert_eq!(report.requests, total);
    assert!(
        control.cap_blocked() >= total - 1,
        "every over-cap send must park on the condvar (parked {} of {})",
        control.cap_blocked(),
        total - 1
    );
}
