//! Table-driven error-path sweep over every public launch entry point.
//!
//! The contract under test: malformed user input — wrong shapes, unknown
//! engine ids, zero column counts — is answered with a typed
//! [`JitSpmmError`] *before* the entry point touches the engine's launch
//! lock or buffer pool. No entry point may panic on user input, and after
//! any rejected call the engine (or server) must serve a well-formed request
//! exactly as if the bad one had never happened.

use jitspmm::serve::{ServerRequest, SpmmServer};
use jitspmm::{JitSpmm, JitSpmmBuilder, JitSpmmError, SpmmOptions, WorkerPool};
use jitspmm_integration_tests::host_supports_jit;
use jitspmm_sparse::{generate, CsrMatrix, DenseMatrix};

/// The classes of malformed input every entry point must reject.
#[derive(Clone, Copy, Debug)]
enum BadInput {
    /// Row count does not match `A.ncols()`.
    Rows,
    /// Column count does not match the compiled `d`.
    Cols,
    /// Both dimensions are nonsense.
    Both,
}

impl BadInput {
    fn all() -> [BadInput; 3] {
        [BadInput::Rows, BadInput::Cols, BadInput::Both]
    }

    fn build(self, a: &CsrMatrix<f32>, d: usize) -> DenseMatrix<f32> {
        match self {
            BadInput::Rows => DenseMatrix::zeros(a.ncols() + 3, d),
            BadInput::Cols => DenseMatrix::zeros(a.ncols(), d + 1),
            BadInput::Both => DenseMatrix::zeros(1, 1),
        }
    }
}

/// One row of the entry-point table: a name and a closure that drives the
/// entry point with the given (malformed) input and hands back its error.
struct EntryPoint {
    name: &'static str,
    run: fn(&JitSpmm<'_, f32>, DenseMatrix<f32>) -> Result<(), JitSpmmError>,
}

fn entry_points() -> Vec<EntryPoint> {
    vec![
        EntryPoint { name: "execute", run: |engine, x| engine.execute(&x).map(drop) },
        EntryPoint {
            name: "execute_into",
            run: |engine, x| {
                let mut y = DenseMatrix::zeros(engine.matrix().nrows(), engine.d());
                engine.execute_into(&x, &mut y).map(drop)
            },
        },
        EntryPoint {
            name: "execute_into_spawning",
            run: |engine, x| {
                let mut y = DenseMatrix::zeros(engine.matrix().nrows(), engine.d());
                engine.execute_into_spawning(&x, &mut y).map(drop)
            },
        },
        EntryPoint {
            name: "execute_single_thread",
            run: |engine, x| {
                let mut y = DenseMatrix::zeros(engine.matrix().nrows(), engine.d());
                engine.execute_single_thread(&x, &mut y).map(drop)
            },
        },
        EntryPoint {
            name: "execute_async",
            run: |engine, x| engine.pool().scope(|scope| engine.execute_async(scope, &x).map(drop)),
        },
        EntryPoint {
            name: "execute_batch",
            run: |engine, x| {
                let inputs = vec![x];
                engine.pool().scope(|scope| engine.execute_batch(scope, &inputs)).map(drop)
            },
        },
        EntryPoint {
            name: "batch_stream push",
            run: |engine, x| {
                engine.pool().scope(|scope| {
                    let mut stream = engine.batch_stream(scope, 2)?;
                    stream.push(&x).map(drop)
                })
            },
        },
        EntryPoint {
            name: "batch_stream push_owned",
            run: |engine, x| {
                engine.pool().scope(|scope| {
                    let mut stream = engine.batch_stream(scope, 2)?;
                    stream.push_owned(x).map(drop)
                })
            },
        },
        EntryPoint {
            name: "server submit",
            run: |engine, x| {
                // A single-engine server wrapped around a compatible spare
                // engine: route the bad input through the serving layer.
                let server_engine = JitSpmmBuilder::new()
                    .pool(engine.pool().clone())
                    .threads(1)
                    .build(engine.matrix(), engine.d())
                    .expect("compiling the server's engine");
                let server = SpmmServer::new(vec![server_engine]).expect("building the server");
                server.pool().clone().scope(|scope| {
                    let mut session = server.session(scope, 2)?;
                    session.submit(0, x).map(drop)
                })
            },
        },
        EntryPoint {
            name: "server serve_batch",
            run: |engine, x| {
                let server_engine = JitSpmmBuilder::new()
                    .pool(engine.pool().clone())
                    .threads(1)
                    .build(engine.matrix(), engine.d())
                    .expect("compiling the server's engine");
                let server = SpmmServer::new(vec![server_engine]).expect("building the server");
                server.serve_batch(0, vec![ServerRequest::new(0, x)]).map(drop)
            },
        },
    ]
}

#[test]
fn every_entry_point_rejects_malformed_shapes_and_stays_usable() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(60, 50, 400, 21);
    let d = 8usize;
    let pool = WorkerPool::new(2);
    let engine = JitSpmmBuilder::new().pool(pool.clone()).threads(2).build(&a, d).unwrap();
    let good = DenseMatrix::random(a.ncols(), d, 7);
    let expected = a.spmm_reference(&good);

    for entry in entry_points() {
        for bad in BadInput::all() {
            let err = (entry.run)(&engine, bad.build(&a, d))
                .expect_err(&format!("{} must reject {bad:?} input", entry.name));
            assert!(
                matches!(err, JitSpmmError::ShapeMismatch(_)),
                "{} on {bad:?}: expected ShapeMismatch, got {err:?}",
                entry.name
            );
            // The rejection must leave no state behind: a well-formed
            // execute right after works and is correct.
            let (y, _) = engine
                .execute(&good)
                .unwrap_or_else(|e| panic!("{} left the engine unusable: {e}", entry.name));
            assert!(y.approx_eq(&expected, 1e-4), "{} corrupted the engine's results", entry.name);
        }
    }
}

#[test]
fn zero_column_compilation_is_rejected_everywhere() {
    // `d == 0` is refused at compile time by every construction path — an
    // engine with nothing to compute can never exist, so no launch path
    // needs a d==0 case.
    let a = generate::uniform::<f32>(20, 20, 50, 3);
    assert!(matches!(
        JitSpmm::compile(&a, 0, SpmmOptions::default()).unwrap_err(),
        JitSpmmError::EmptyDenseMatrix
    ));
    assert!(matches!(
        JitSpmmBuilder::new().build(&a, 0).unwrap_err(),
        JitSpmmError::EmptyDenseMatrix
    ));
    assert!(matches!(
        JitSpmm::compile_with_pool(&a, 0, SpmmOptions::default(), WorkerPool::inline())
            .unwrap_err(),
        JitSpmmError::EmptyDenseMatrix
    ));
}

#[test]
fn server_rejects_unknown_engine_ids_everywhere() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(40, 40, 250, 5);
    let pool = WorkerPool::new(1);
    let engine = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, 4).unwrap();
    let server = SpmmServer::new(vec![engine]).unwrap();
    let input = || DenseMatrix::<f32>::random(40, 4, 9);
    // serve_batch: validated up front.
    assert!(matches!(
        server.serve_batch(0, vec![ServerRequest::new(3, input())]).unwrap_err(),
        JitSpmmError::UnknownEngine { requested: 3, engines: 1 }
    ));
    // session submit: validated per request.
    server.pool().clone().scope(|scope| {
        let mut session = server.session(scope, 0).unwrap();
        assert!(matches!(
            session.submit(1, input()).unwrap_err(),
            JitSpmmError::UnknownEngine { requested: 1, engines: 1 }
        ));
        // A good request still goes through afterwards.
        assert!(session.submit(0, input()).is_ok());
        let (rest, report) = session.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(report.requests, 1);
    });
    // serve_stream: the error aborts the serve without wedging producers.
    let result = server.serve_stream(0, 1, |sender| {
        let _ = sender.send(5, input());
        let _ = sender.send(5, input());
    });
    assert!(matches!(result.unwrap_err(), JitSpmmError::UnknownEngine { .. }));
}
