//! Integration tests for the persistent worker-pool runtime: many engines
//! sharing one pool, concurrent submission from multiple host threads, all
//! four workload-division strategies on the pooled path, engine-drop
//! behaviour, output-buffer recycling, deferred submission (handle drop
//! semantics, shutdown), and the notify-one wake chain under rapid
//! submission.

use jitspmm::baseline::{mkl_like, vectorized};
use jitspmm::{JitSpmmBuilder, JobSpec, Strategy, WorkerPool};
use jitspmm_integration_tests::{host_supports_jit, pathological, small_skewed};
use jitspmm_sparse::{generate, CsrMatrix, DenseMatrix};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn all_strategies() -> [Strategy; 4] {
    [
        Strategy::RowSplitStatic,
        Strategy::RowSplitDynamic { batch: 32 },
        Strategy::NnzSplit,
        Strategy::MergeSplit,
    ]
}

#[test]
fn all_strategies_correct_on_the_pooled_path() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let pool = WorkerPool::new(3);
    for a in [small_skewed(), pathological()] {
        let x = DenseMatrix::random(a.ncols(), 16, 21);
        let expected = a.spmm_reference(&x);
        for strategy in all_strategies() {
            // Lanes both below and above the pool's worker count.
            for threads in [1usize, 2, 7] {
                let engine = JitSpmmBuilder::new()
                    .strategy(strategy)
                    .threads(threads)
                    .pool(pool.clone())
                    .build(&a, 16)
                    .unwrap();
                let (y, report) = engine.execute(&x).unwrap();
                assert!(
                    y.approx_eq(&expected, 1e-4),
                    "strategy {strategy}, {threads} lanes: diff {}",
                    y.max_abs_diff(&expected)
                );
                assert_eq!(report.threads, threads);
                assert_eq!(report.elapsed, report.kernel + report.dispatch);
            }
        }
    }
}

#[test]
fn many_engines_share_one_pool_concurrently() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    // One pool, four host threads, each owning two engines with different
    // strategies over its own matrix; interleaved executes must all agree
    // with the reference. This exercises job serialization under contention.
    let pool = WorkerPool::new(2);
    std::thread::scope(|scope| {
        for worker in 0..4u64 {
            let pool = pool.clone();
            scope.spawn(move || {
                let a = generate::rmat::<f32>(8, 4_000, generate::RmatConfig::GRAPH500, worker);
                let strategies = all_strategies();
                let engines: Vec<_> = (0..2)
                    .map(|i| {
                        JitSpmmBuilder::new()
                            .strategy(strategies[(worker as usize + i) % 4])
                            .threads(2)
                            .pool(pool.clone())
                            .build(&a, 8)
                            .unwrap()
                    })
                    .collect();
                for round in 0..10u64 {
                    let x = DenseMatrix::random(a.ncols(), 8, worker * 100 + round);
                    let expected = a.spmm_reference(&x);
                    for engine in &engines {
                        let (y, _) = engine.execute(&x).unwrap();
                        assert!(y.approx_eq(&expected, 1e-4), "worker {worker}, round {round}");
                    }
                }
            });
        }
    });
}

#[test]
fn one_engine_shared_across_threads_is_race_free() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    // Regression test: the dynamic-dispatch counter is engine-shared state;
    // concurrent execute() calls on ONE engine (it is Sync) must serialize
    // their reset-then-claim launches, or a reset can interleave with a
    // running claim loop and an execute returns stale buffer contents.
    let a = generate::rmat::<f32>(9, 8_000, generate::RmatConfig::GRAPH500, 77);
    let engine = JitSpmmBuilder::new()
        .strategy(Strategy::RowSplitDynamic { batch: 16 })
        .threads(2)
        .pool(WorkerPool::new(2))
        .build(&a, 8)
        .unwrap();
    let x = DenseMatrix::random(a.ncols(), 8, 5);
    let expected = a.spmm_reference(&x);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for round in 0..15 {
                    let (y, _) = engine.execute(&x).unwrap();
                    assert!(y.approx_eq(&expected, 1e-4), "round {round}");
                }
            });
        }
    });
}

#[test]
fn dropping_an_engine_does_not_wedge_the_pool() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let pool = WorkerPool::new(2);
    let a = generate::uniform::<f32>(200, 200, 2_000, 5);
    let x = DenseMatrix::random(200, 8, 6);
    {
        let engine = JitSpmmBuilder::new().pool(pool.clone()).threads(2).build(&a, 8).unwrap();
        let (y, _) = engine.execute(&x).unwrap();
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
        // `y` (a pooled buffer borrowed from `engine`) is still alive here;
        // dropping the engine first must be fine.
    }
    // The pool keeps serving raw jobs and fresh engines after the drop.
    let hits = std::sync::atomic::AtomicUsize::new(0);
    pool.run(32, &|_| {
        hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 32);
    let engine2 = JitSpmmBuilder::new().pool(pool.clone()).threads(2).build(&a, 8).unwrap();
    let (y2, _) = engine2.execute(&x).unwrap();
    assert!(y2.approx_eq(&a.spmm_reference(&x), 1e-4));
}

#[test]
fn pooled_output_outlives_the_engine() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(64, 64, 600, 9);
    let x = DenseMatrix::random(64, 4, 1);
    let expected = a.spmm_reference(&x);
    let y = {
        let engine = JitSpmmBuilder::new().threads(2).build(&a, 4).unwrap();
        let (y, _) = engine.execute(&x).unwrap();
        y
    };
    // The engine is gone; the pooled result must still be readable, and
    // detaching it must yield a normal DenseMatrix.
    assert!(y.approx_eq(&expected, 1e-4));
    let dense = y.into_dense();
    assert!(dense.approx_eq(&expected, 1e-4));
}

#[test]
fn steady_state_execute_reuses_buffers_across_strategies() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_skewed();
    for strategy in all_strategies() {
        let engine = JitSpmmBuilder::new().strategy(strategy).threads(2).build(&a, 16).unwrap();
        let x1 = DenseMatrix::random(a.ncols(), 16, 1);
        let x2 = DenseMatrix::random(a.ncols(), 16, 2);
        let first_ptr = {
            let (y, _) = engine.execute(&x1).unwrap();
            y.as_ptr()
        };
        // The recycled (stale, non-zeroed) buffer must produce exact results
        // for a different input.
        let (y2, _) = engine.execute(&x2).unwrap();
        assert_eq!(y2.as_ptr(), first_ptr, "{strategy}: buffer must be recycled");
        assert!(y2.approx_eq(&a.spmm_reference(&x2), 1e-4), "{strategy}");
    }
}

#[test]
fn baselines_run_on_an_explicit_pool() {
    let pool = WorkerPool::new(2);
    let a = generate::rmat::<f32>(8, 3_000, generate::RmatConfig::WEB, 3);
    let x = DenseMatrix::random(a.ncols(), 8, 4);
    let expected = a.spmm_reference(&x);
    for strategy in all_strategies() {
        let mut y = DenseMatrix::zeros(a.nrows(), 8);
        vectorized::spmm_vectorized_on(&pool, &a, &x, &mut y, strategy, 3);
        assert!(y.approx_eq(&expected, 1e-4), "vectorized, {strategy}");
    }
    let mut y = DenseMatrix::zeros(a.nrows(), 8);
    mkl_like::spmm_mkl_like_f32_on(&pool, &a, &x, &mut y, 3);
    assert!(y.approx_eq(&expected, 1e-4), "mkl-like");
}

#[test]
fn inline_pool_produces_identical_results() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    // A zero-worker pool runs everything on the submitting thread; results
    // must be identical to a threaded pool (bitwise, since the partition is
    // the same).
    let a = CsrMatrix::<f32>::from_triplets(
        50,
        50,
        &(0..200).map(|i| (i % 50, (i * 7) % 50, i as f32 * 0.5 + 1.0)).collect::<Vec<_>>(),
    )
    .unwrap();
    let x = DenseMatrix::random(50, 8, 11);
    let inline = JitSpmmBuilder::new().pool(WorkerPool::inline()).threads(2).build(&a, 8).unwrap();
    let threaded = JitSpmmBuilder::new().pool(WorkerPool::new(2)).threads(2).build(&a, 8).unwrap();
    let (y_inline, _) = inline.execute(&x).unwrap();
    let (y_threaded, _) = threaded.execute(&x).unwrap();
    assert_eq!(y_inline, y_threaded);
}

/// The ROADMAP's known wake-cost issue: the old `notify_all` wake briefly
/// woke every parked worker per job. The replacement notify-one chain must
/// wake exactly as many workers as a job needs — and, critically, must never
/// *lose* a wakeup: a lost wakeup leaves a job's lane slots unclaimed
/// forever and `wait()` hangs. Hammer an 8-worker pool with 10k rapid
/// submissions across a mix of lane caps and overlap patterns; if any
/// wakeup is lost the test deadlocks (and the suite times out), and if any
/// task is lost or duplicated the counters catch it.
#[test]
fn notify_one_chain_survives_10k_rapid_submits() {
    let pool = WorkerPool::new(8);
    let hits = AtomicUsize::new(0);
    let task = |_i: usize| {
        hits.fetch_add(1, Ordering::Relaxed);
    };
    let mut expected = 0usize;
    let mut submitted = 0usize;
    pool.scope(|scope| {
        let mut round = 0usize;
        while submitted < 10_000 {
            // Cycle lane caps 1..=8 so the chain length varies every round.
            let cap = round % 8 + 1;
            let tasks = 4 + round % 5;
            if round.is_multiple_of(3) {
                // Two jobs genuinely in flight at once.
                let a = scope.submit(JobSpec::new(tasks).max_lanes(cap), &task);
                let b = scope.submit(JobSpec::new(tasks).max_lanes(8 - cap + 1), &task);
                a.wait();
                b.wait();
                submitted += 2;
                expected += 2 * tasks;
            } else {
                scope.submit(JobSpec::new(tasks).max_lanes(cap), &task).wait();
                submitted += 1;
                expected += tasks;
            }
            round += 1;
        }
    });
    assert!(submitted >= 10_000);
    assert_eq!(hits.load(Ordering::Relaxed), expected, "lost or duplicated tasks");
}

/// Dropping a `JobHandle` without calling `wait()` must still run the job to
/// completion (drop joins, releasing the owned closure), scoped handles may
/// be dropped freely (the scope joins them on exit), and the pool must shut
/// down cleanly afterwards — no wedged workers, no leaked jobs.
#[test]
fn job_handle_drop_without_wait_completes_and_pool_shuts_down() {
    let pool = WorkerPool::new(2);
    // Owned tasks through WorkerPool::submit: drop joins immediately.
    let hits = Arc::new(AtomicUsize::new(0));
    {
        let submit = |spec| {
            pool.submit(spec, {
                let hits = Arc::clone(&hits);
                move |_i| {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            })
        };
        let _one = submit(JobSpec::new(32));
        let _two = submit(JobSpec::new(32).max_lanes(1));
        // Both dropped here without wait().
    }
    assert_eq!(hits.load(Ordering::Relaxed), 64, "drop must join the job");
    // Borrowed tasks through a scope: exit joins whatever was not waited.
    let borrowed = AtomicUsize::new(0);
    let task = |_i: usize| {
        borrowed.fetch_add(1, Ordering::Relaxed);
    };
    pool.scope(|scope| {
        let _one = scope.submit(JobSpec::new(32), &task);
        let _two = scope.submit(JobSpec::new(32).max_lanes(1), &task);
        // Both dropped here; the scope joins them before returning.
    });
    assert_eq!(borrowed.load(Ordering::Relaxed), 64, "scope exit must join the jobs");
    // Dropping the pool joins the workers; a leaked/wedged job would hang.
    drop(pool);
}

/// Dropping an `ExecutionHandle` without waiting must hand the pooled output
/// buffer back to the engine (no leak — the very next execute reuses it) and
/// must not wedge pool shutdown.
#[test]
fn execution_handle_drop_without_wait_recycles_buffer_and_shutdown() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let pool = WorkerPool::new(2);
    let a = generate::uniform::<f32>(128, 128, 1_500, 13);
    let x = DenseMatrix::random(128, 8, 14);
    {
        let engine = JitSpmmBuilder::new().pool(pool.clone()).threads(2).build(&a, 8).unwrap();
        // Learn the engine's recycled buffer address with a plain execute.
        let recycled_ptr = {
            let (y, _) = engine.execute(&x).unwrap();
            y.as_ptr()
        };
        // The async launch acquires that same buffer; dropping the handle
        // without wait must hand it back...
        pool.scope(|scope| drop(engine.execute_async(scope, &x).unwrap()));
        // ...so the next execute reuses it instead of allocating afresh.
        let (y, _) = engine.execute(&x).unwrap();
        assert_eq!(y.as_ptr(), recycled_ptr, "abandoned launch leaked its output buffer");
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
    }
    // Engine gone; pool must still serve and then shut down cleanly.
    let hits = AtomicUsize::new(0);
    pool.run(16, &|_| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 16);
    drop(pool);
}

/// An abandoned (dropped-without-wait) launch must leave the engine ready
/// for the next launch immediately — the launch lock is released on drop.
#[test]
fn abandoned_launch_releases_the_engine() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::rmat::<f32>(8, 3_000, generate::RmatConfig::GRAPH500, 15);
    let x = DenseMatrix::random(a.ncols(), 8, 16);
    let engine = JitSpmmBuilder::new().pool(WorkerPool::new(2)).threads(2).build(&a, 8).unwrap();
    engine.pool().scope(|scope| {
        for _ in 0..10 {
            drop(engine.execute_async(scope, &x).unwrap());
        }
        let (y, _) = engine.execute_async(scope, &x).unwrap().wait();
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
    });
}
