//! Cross-crate integration tests: the JIT engine against every baseline and
//! the textbook reference, across strategies, ISAs, column counts and matrix
//! shapes.

use jitspmm::baseline::{mkl_like, scalar, vectorized};
use jitspmm::{IsaLevel, JitSpmmBuilder, Strategy};
use jitspmm_integration_tests::{host_supports_jit, pathological, small_skewed, small_uniform};
use jitspmm_sparse::{datasets, generate, CsrMatrix, DenseMatrix};

fn check_engine(a: &CsrMatrix<f32>, d: usize, strategy: Strategy, threads: usize) {
    let x = DenseMatrix::random(a.ncols(), d, 99);
    let expected = a.spmm_reference(&x);
    let engine =
        JitSpmmBuilder::new().strategy(strategy).threads(threads).build(a, d).expect("compile");
    let (y, _) = engine.execute(&x).expect("execute");
    assert!(
        y.approx_eq(&expected, 1e-4),
        "strategy {strategy}, d = {d}: max diff {}",
        y.max_abs_diff(&expected)
    );
}

#[test]
fn jit_matches_reference_across_strategies_and_shapes() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let matrices = [small_skewed(), small_uniform(), pathological()];
    for a in &matrices {
        for strategy in [
            Strategy::RowSplitStatic,
            Strategy::row_split_dynamic_default(),
            Strategy::NnzSplit,
            Strategy::MergeSplit,
        ] {
            for d in [8usize, 16, 45] {
                check_engine(a, d, strategy, 4);
            }
        }
    }
}

#[test]
fn jit_matches_reference_on_dataset_standins() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    // The two structurally extreme dataset stand-ins: a Mycielskian graph
    // (dense, regular) and a Kronecker graph (hub-dominated). Scaled-down
    // further for test speed via the quick generators.
    let myc = generate::mycielskian::<f32>(9);
    let kron = generate::kronecker::<f32>(10, 8, 3);
    for a in [&myc, &kron] {
        check_engine(a, 16, Strategy::row_split_dynamic_default(), 0);
        check_engine(a, 32, Strategy::MergeSplit, 3);
    }
}

#[test]
fn all_isa_tiers_agree_with_each_other() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_skewed();
    let d = 23;
    let x = DenseMatrix::random(a.ncols(), d, 5);
    let expected = a.spmm_reference(&x);
    let features = jitspmm::CpuFeatures::detect();
    for isa in IsaLevel::ALL {
        if !features.supports(isa) {
            continue;
        }
        let engine = JitSpmmBuilder::new().isa(isa).threads(2).build(&a, d).unwrap();
        let (y, _) = engine.execute(&x).unwrap();
        assert!(y.approx_eq(&expected, 1e-4), "isa {isa}");
        assert_eq!(engine.meta().isa, isa);
    }
}

#[test]
fn baselines_and_jit_all_agree() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_skewed();
    let d = 16;
    let x = DenseMatrix::random(a.ncols(), d, 4);
    let expected = a.spmm_reference(&x);

    let mut y_scalar = DenseMatrix::zeros(a.nrows(), d);
    scalar::spmm_scalar_unchecked(&a, &x, &mut y_scalar);
    assert!(y_scalar.approx_eq(&expected, 1e-4));

    let mut y_vec = DenseMatrix::zeros(a.nrows(), d);
    vectorized::spmm_vectorized(&a, &x, &mut y_vec, Strategy::NnzSplit, 4);
    assert!(y_vec.approx_eq(&expected, 1e-4));

    let mut y_mkl = DenseMatrix::zeros(a.nrows(), d);
    mkl_like::spmm_mkl_like_f32(&a, &x, &mut y_mkl, 4);
    assert!(y_mkl.approx_eq(&expected, 1e-4));

    let engine = JitSpmmBuilder::new().build(&a, d).unwrap();
    let (y_jit, _) = engine.execute(&x).unwrap();
    assert!(y_jit.approx_eq(&expected, 1e-4));
}

#[test]
fn engine_reuse_across_multiple_inputs() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = small_uniform();
    let engine = JitSpmmBuilder::new().threads(2).build(&a, 8).unwrap();
    for seed in 0..5u64 {
        let x = DenseMatrix::random(a.ncols(), 8, seed);
        let (y, _) = engine.execute(&x).unwrap();
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4), "seed {seed}");
    }
}

#[test]
fn table3_registry_generates_consistent_spmm_inputs() {
    if !host_supports_jit() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    // Use the smallest dataset stand-in end-to-end (generation → JIT SpMM →
    // reference check) to tie the dataset registry into the pipeline.
    let spec = datasets::by_name("mycielskian19").unwrap();
    let a: CsrMatrix<f32> = spec.generate();
    let x = DenseMatrix::random(a.ncols(), 16, 1);
    let engine = JitSpmmBuilder::new().threads(0).build(&a, 16).unwrap();
    let (y, _) = engine.execute(&x).unwrap();
    assert!(y.approx_eq(&a.spmm_reference(&x), 1e-3));
}
