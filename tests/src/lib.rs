//! Shared fixtures for the cross-crate integration tests.
//!
//! The actual tests live in `tests/tests/*.rs`; this small library holds the
//! helpers they share (host capability checks and standard test matrices).

use jitspmm::CpuFeatures;
use jitspmm_sparse::{generate, CsrMatrix};

/// Whether the host can run the JIT kernels (AVX + FMA at minimum).
pub fn host_supports_jit() -> bool {
    let f = CpuFeatures::detect();
    f.avx && f.has_fma()
}

/// A small skewed (power-law) test matrix.
pub fn small_skewed() -> CsrMatrix<f32> {
    generate::rmat(9, 6_000, generate::RmatConfig::GRAPH500, 11)
}

/// A small uniform test matrix.
pub fn small_uniform() -> CsrMatrix<f32> {
    generate::uniform(400, 350, 4_000, 12)
}

/// A matrix with empty rows, single-entry rows and a dense row, exercising
/// boundary paths of every kernel.
pub fn pathological() -> CsrMatrix<f32> {
    let mut triplets = Vec::new();
    // Dense row 0.
    for c in 0..200 {
        triplets.push((0usize, c as usize, 0.5 + (c % 7) as f32));
    }
    // A diagonal band in the middle, leaving many rows empty.
    for r in (40..160).step_by(3) {
        triplets.push((r, r, 1.0));
        if r + 1 < 200 {
            triplets.push((r, r + 1, -1.0));
        }
    }
    // Last row has exactly one entry in the last column.
    triplets.push((199, 199, 2.0));
    CsrMatrix::from_triplets(200, 200, &triplets).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_expected_shapes() {
        assert_eq!(pathological().nrows(), 200);
        assert!(small_skewed().nnz() > 1000);
        assert_eq!(small_uniform().ncols(), 350);
    }
}
