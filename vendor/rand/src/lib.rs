//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace-local crate implements exactly the API subset the JITSPMM
//! workspace consumes: a seedable `StdRng` (xoshiro256++ seeded through
//! SplitMix64), `RngExt::{random, random_range}`, and
//! `distr::{Distribution, Uniform}`. Generated streams are deterministic per
//! seed, which is all the matrix generators and test fixtures rely on.

#![deny(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniformly distributed value of `T` (full range for integers,
    /// `[0, 1)` for floats).
    fn random<T: StandardValue>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniformly distributed value inside `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Alias trait matching `rand::Rng` for code written against the 0.9 API.
pub trait Rng: RngExt {}
impl<T: RngExt + ?Sized> Rng for T {}

/// Types with a canonical uniform distribution for [`RngExt::random`].
pub trait StandardValue {
    /// Sample one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardValue for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardValue for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardValue for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardValue for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled by [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Sample one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    // Multiply-shift bounded sampling (Lemire); the bias for n << 2^64 is
    // far below anything the statistical tests in this workspace observe.
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_u64_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seeding. Deterministic per seed; not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions (the `rand::distr` module subset).
pub mod distr {
    use super::{RngCore, StandardValue};

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Sample one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error returned by [`Uniform::new`] for an invalid range.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct UniformError;

    impl std::fmt::Display for UniformError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("low must be strictly less than high")
        }
    }

    impl std::error::Error for UniformError {}

    /// The uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: PartialOrd + Copy> Uniform<T> {
        /// Build a uniform distribution over `[low, high)`.
        ///
        /// # Errors
        ///
        /// Fails unless `low < high`.
        pub fn new(low: T, high: T) -> Result<Uniform<T>, UniformError> {
            if low < high {
                Ok(Uniform { low, high })
            } else {
                Err(UniformError)
            }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            self.low + f64::from_rng(rng) * (self.high - self.low)
        }
    }

    impl Distribution<f32> for Uniform<f32> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            self.low + f32::from_rng(rng) * (self.high - self.low)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distr::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit: {seen:?}");
    }

    #[test]
    fn uniform_distribution_samples_range() {
        let dist = Uniform::new(0.0f64, 1.0).expect("valid range");
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..4096).map(|_| dist.sample(&mut rng)).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean = {mean}");
        assert!(Uniform::new(1.0f64, 1.0).is_err());
    }
}
