//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to a crates registry, so this
//! workspace-local crate implements the API subset the `jitspmm-bench`
//! benches use: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter` and the
//! `criterion_group!`/`criterion_main!` macros. Measurements are simple
//! best/median/mean statistics over `sample_size` timed iterations printed
//! to stdout — no plots, no statistical regression analysis.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// An id consisting of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Timing context passed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f` over the configured number of samples (after one warm-up
    /// call) and record the measurements.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut bencher);
        let mut sorted = bencher.samples.clone();
        sorted.sort();
        if sorted.is_empty() {
            println!("{}/{id}: no samples recorded", self.name);
            return;
        }
        let best = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{}/{id}: best {:?}  median {:?}  mean {:?}  (n={})",
            self.name,
            best,
            median,
            mean,
            sorted.len()
        );
    }

    /// Run one benchmark identified by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id.id, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id.id, |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra in this stand-in).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("== benchmark group: {name} ==");
        BenchmarkGroup { name, sample_size: self.sample_size }
    }
}

/// Declare a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n) * 3)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 16).id, "f/16");
        assert_eq!(BenchmarkId::from_parameter(128).id, "128");
    }
}
