//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace-local crate implements the API subset the integration tests
//! use: the [`strategy::Strategy`] trait with `prop_flat_map`/`prop_map`,
//! range / tuple / [`prelude::Just`] / [`collection::vec`] strategies, the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, and
//! [`prelude::ProptestConfig`]. Inputs are generated from a deterministic
//! per-test PRNG; failing cases are reported with their case number but are
//! **not** shrunk.

#![deny(missing_docs)]

/// Deterministic input-generation PRNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from `seed`.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample below zero");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategies: composable descriptions of how to generate test inputs.
pub mod strategy {
    use super::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Derive a new strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }

        /// Transform each generated value.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            let intermediate = self.base.generate(rng);
            (self.f)(intermediate).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.base.generate(rng))
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u64, u32, u8);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_signed_range_strategy!(isize, i64, i32, i16, i8);

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

/// Types with a canonical "any value" strategy.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types for which [`any`] can produce arbitrary values.
    pub trait Arbitrary: Sized {
        /// Sample one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::strategy::Strategy;
    use super::TestRng;

    /// See [`uniform2`] and friends.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    /// A strategy producing `[T; 2]` with both elements drawn from `element`.
    pub fn uniform2<S: Strategy>(element: S) -> UniformArray<S, 2> {
        UniformArray { element }
    }

    /// A strategy producing `[T; 3]` with all elements drawn from `element`.
    pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
        UniformArray { element }
    }

    /// A strategy producing `[T; 4]` with all elements drawn from `element`.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
        UniformArray { element }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// A strategy producing `Vec`s of values from `element`, with a length
    /// drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration and error types.
pub mod test_runner {
    /// Configuration for one `proptest!` block.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Failure of a single generated test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}
}

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Define property tests: each `fn name(pattern in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                // Deterministic per-test seed: stable across runs, distinct
                // per property name.
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                }
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::new(seed.wrapping_add(case));
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!("property {} failed on case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -1.0f32..1.0f32) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn flat_map_and_collections_compose(
            (n, items) in (1usize..10).prop_flat_map(|n| {
                (Just(n), collection::vec(0usize..n, 0..20))
            })
        ) {
            prop_assert!(n >= 1);
            for item in &items {
                prop_assert!(*item < n);
            }
            prop_assert_eq!(items.len(), items.len());
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::new(1);
        let mut b = crate::TestRng::new(1);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
